"""Sharded conservative parallel simulation kernel.

``runtime.kernel = "sharded"`` partitions a spec-built cluster across
worker universes — one :class:`~repro.sim.KernelCore` calendar per host
group — and synchronizes them with the classic conservative
null-message/window scheme, using cross-shard link propagation delay as
lookahead.

Design
------
Construction is blueprint-partitioned: when the topology has a
registered blueprint (:data:`repro.registry.BLUEPRINTS`) and the run
carries no fault plan, resilience, or NIC collectives, each worker
*materializes only its own shard* —
``materialize(blueprint, owned_switches)`` builds real hosts and
switches for owned sites, ghost rows (tid-mirroring, event-silent) for
foreign hosts and boundary stubs for foreign switches at the cut, while
replaying the global VC mesh so vc ids, VCIs and switch tables agree
with every other universe bit for bit.  Worker memory and construction
time then scale with the shard, not the cluster.  Runs outside that
gate (or topologies without a blueprint) fall back to the PR 8
*replicated* scheme: every worker builds the full cluster from the same
spec and only its own shard's host schedulers start.  Either way the
only coupling between workers is the set of *cut
channels* — directed ATM trunk channels whose upstream node lives in one
shard and whose downstream node lives in another.  On the upstream side
the channel's :meth:`~repro.atm.link.Channel._dispatch` seam is
overridden to export the serialized burst (as a :class:`CutEvent`) at
``now + prop_delay`` instead of delivering locally; the coordinator
routes it to the downstream worker, which re-materializes the burst on
its replica channel and delivers it at exactly the exported instant.

Windows: each round every worker reports its next local event time and
its outbox; the coordinator computes ``gm = min(peeks, pending
arrivals)`` and grants the horizon ``gm + L`` where ``L`` is the
smallest cut-channel propagation delay.  Any burst exported inside a
window drains at ``t >= gm`` and therefore arrives at ``t + prop >= gm
+ L`` — at or past the horizon — so no worker ever receives an event in
its past (``KernelCore.run_below`` leaves the clock strictly below the
horizon).  Cross-shard arrivals are totally ordered by the merge key
``(timestamp, shard, seq)``.

Supervision: every coordinator-side control-queue receive runs under a
watchdog (:class:`_Supervisor`) parameterized by the spec's
``[runtime.supervision]`` table — a wall-clock barrier deadline bounds
each window, with liveness polls in between so a dead worker is
detected in milliseconds rather than at deadline expiry.  Failures are
classified (``crashed`` / ``hung`` / ``poisoned``) into
:class:`ShardWorkerError` and handled by policy: relaunch the sharded
run (worker faults key on the launch attempt, so a retry is clean),
degrade to the single kernel (byte-identical by the determinism walls),
or raise.  Recoveries stamp the ``kernel.recovery.*`` counter family
and a ``supervisor`` trace point — substrate telemetry the behaviour
walls strip, which is what lets a recovered run still compare
byte-identical.  The deterministic chaos seam
(:class:`~repro.faults.WorkerCrash` / :class:`~repro.faults.WorkerStall`)
kills or stalls shard *k* exactly at window *n*, putting the supervisor
itself under test.

Constraints: a shard cut must be a switch-to-switch WAN trunk — host
TAXI links share a BER rng across both directions and a host can never
be split from its own adapter/switch, so plans that would cut one raise
:class:`~repro.config.spec.SpecError`.  HSM fabrics therefore never
straddle a shard boundary except over such a bridged WAN link.  Drivers
must drive the spec-built runtime (``rt.run()``); self-contained apps
and drivers that aggregate cross-pid state locally (``collective``,
``stream``) are rejected or unsupported.
"""

from __future__ import annotations

import json
import logging
import math
import multiprocessing
import os
import queue as _queue
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..config.build import (ScenarioResult, ScenarioRun, _export_obs,
                            build_cluster)
from ..config.spec import ScenarioSpec, SpecError, SupervisionSpec
from ..faults.plan import WorkerCrash, WorkerStall
from ..obs.recovery import (SUPERVISOR_ENTITY, stamp_recovery,
                            stamp_recovery_snapshot)
from ..registry import APP_DRIVERS, KERNELS
from .kernel import Event, SimulationError
from .trace import Activity, Interval, Timeline

__all__ = [
    "CutEvent", "ShardPlan", "ShardFallbackWarning", "ShardWorkerError",
    "plan_shards", "merge_key", "merge_cut_events", "next_window",
    "run_scenario_sharded", "MergedMetrics", "MergedTracer",
    "ShardedClusterView",
]

logger = logging.getLogger(__name__)


class ShardFallbackWarning(UserWarning):
    """``runtime.shards > 1`` degraded to the single kernel."""


class ShardWorkerError(SimulationError):
    """A shard worker failed in the *execution substrate*, not the model.

    The supervisor classifies every control-plane failure into one
    ``reason``:

    * ``"crashed"`` — the worker process/thread died without reporting
      (pipe EOF, nonzero exit, or a thread that returned mid-protocol);
    * ``"hung"`` — the worker stayed alive but sent nothing within the
      barrier deadline (``runtime.supervision.barrier_deadline_s``);
    * ``"poisoned"`` — the control channel delivered a payload that
      could not be deserialized.

    ``window`` is the coordinator's 1-based round counter at the time of
    failure (0 = the hello phase, -1 = post-run teardown) and
    ``last_good`` the wall-clock :func:`time.monotonic` stamp of the
    worker's last healthy message — both are wall-clock/protocol facts,
    never simulated time, so supervision cannot perturb determinism.
    """

    def __init__(self, shard: int, window: int, reason: str,
                 detail: str = "", last_good: Optional[float] = None):
        self.shard = shard
        self.window = window
        self.reason = reason
        self.detail = detail
        self.last_good = last_good
        msg = f"shard {shard} worker {reason} at window {window}"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


#: worker execution mode when none is passed: real processes where
#: ``fork`` exists (benchmarks want parallelism), threads elsewhere.
DEFAULT_MODE = "process" if hasattr(os, "fork") else "thread"


# --------------------------------------------------------------------------
# cross-shard events + pure merge helpers (property-tested in isolation)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class CutEvent:
    """One burst crossing a shard cut, in wire-flat (picklable) form."""

    arrival: float          # absolute delivery instant in the dest universe
    src_shard: int
    seq: int                # per-source-shard export sequence (1-based)
    dest_shard: int
    channel: str            # cut channel name (identical in every universe)
    vc_id: int
    is_mcast: bool
    vci: int
    msg_id: int
    n_cells: int
    payload_bytes: int
    is_final: bool
    corrupted: bool
    enqueued_at: float
    payload: Any = None


def merge_key(ev: CutEvent) -> tuple[float, int, int]:
    """The deterministic total order over cross-shard events."""
    return (ev.arrival, ev.src_shard, ev.seq)


def merge_cut_events(streams) -> list[CutEvent]:
    """Merge per-shard outbox streams into one total order.

    The result depends only on :func:`merge_key` — never on the
    interleaving of the input streams — which is what makes the window
    protocol replay-stable.
    """
    out = [ev for stream in streams for ev in stream]
    out.sort(key=merge_key)
    return out


def next_window(peeks, pending_arrivals, lookahead: float):
    """``(gm, horizon)`` for one coordinator round.

    ``gm`` is the earliest thing anyone could do (a local event or an
    undelivered cross-shard arrival); the horizon grants every worker
    the right to process events strictly below ``gm + lookahead``.
    ``gm == inf`` means global quiescence: ``(inf, inf)``.
    """
    gm = min(list(peeks) + list(pending_arrivals), default=math.inf)
    if math.isinf(gm):
        return math.inf, math.inf
    return gm, gm + lookahead


# --------------------------------------------------------------------------
# shard planning
# --------------------------------------------------------------------------

@dataclass
class ShardPlan:
    """Which shard owns each pid/host/switch/channel, plus the cut set."""

    n_shards: int
    lookahead: float                      # min cut prop delay (inf: no cuts)
    pid_shard: dict[int, int]
    host_shard: dict[str, int]
    switch_shard: dict[str, int]
    channel_shard: dict[str, int]         # channel name -> upstream owner
    cut_dest: dict[str, int] = field(default_factory=dict)
    shard_loads: list = field(default_factory=list)    # est. event weight
    group_weights: dict = field(default_factory=dict)  # group key -> weight

    @property
    def cut_channels(self) -> list[str]:
        return sorted(self.cut_dest)

    def owned_pids(self, shard: int) -> list[int]:
        return sorted(p for p, s in self.pid_shard.items() if s == shard)


def _node_label(node) -> str:
    """Graph-node name: adapters carry ``host_name``, switches ``name``."""
    return getattr(node, "host_name", None) or node.name


def plan_shards(cluster, shards: int, shard_hints=None,
                pid_weights=None) -> ShardPlan:
    """Partition ``cluster`` into at most ``shards`` host-group shards.

    A *host group* is the set of hosts attached to the same switch
    neighborhood.  Hinted groups (``shard_hints``: switch name -> shard
    index) are pinned first; the rest are placed by the blueprint cost
    model — heaviest group first onto the least-loaded shard (LPT),
    where a group's weight is the sum of its pids' ``pid_weights``
    (hosts x driver intensity; uniform 1.0 when None).  With uniform
    weights and no hints this reduces exactly to round-robin in min-pid
    order.  Topologies with a shared LAN medium or no ATM fabric
    collapse to one shard.

    ``cluster`` may be a real built :class:`~repro.net.topology.Cluster`
    or a :class:`~repro.net.blueprint.PlanView` over an unmaterialized
    blueprint — both produce the identical plan.
    """
    hints = dict(shard_hints or {})
    weights = pid_weights or {}
    n = cluster.n_hosts
    host_names = [cluster.host(pid).name for pid in range(n)]
    fabric = getattr(cluster, "fabric", None)

    def trivial() -> ShardPlan:
        switch_shard = ({name: 0 for name in fabric.switches}
                        if fabric is not None else {})
        channel_shard = {}
        if fabric is not None:
            for _a, _b, data in fabric.graph.edges(data=True):
                link = data["link"]
                channel_shard[link.fwd.name] = 0
                channel_shard[link.rev.name] = 0
        return ShardPlan(
            n_shards=1, lookahead=math.inf,
            pid_shard={pid: 0 for pid in range(n)},
            host_shard={h: 0 for h in host_names},
            switch_shard=switch_shard, channel_shard=channel_shard,
            shard_loads=[sum(weights.get(pid, 1.0) for pid in range(n))])

    if shards <= 1 or fabric is None or getattr(cluster, "lan", None) is not None:
        return trivial()

    # ---- host groups keyed by the adapter's sorted switch neighborhood
    groups: dict[tuple[str, ...], list[int]] = {}
    for pid, hname in enumerate(host_names):
        adapter = fabric.adapters[hname]
        key = tuple(sorted(_node_label(nb)
                           for nb in fabric.graph.neighbors(adapter)))
        groups.setdefault(key, []).append(pid)
    ordered = sorted(groups.items(), key=lambda kv: min(kv[1]))
    eff = min(shards, len(ordered))
    if eff <= 1:
        return trivial()

    for sw, s in hints.items():
        if sw not in fabric.switches:
            raise SpecError(
                f"runtime.shard_hints names unknown switch {sw!r}; "
                f"switches: {', '.join(sorted(fabric.switches))}")
        if not (0 <= s < eff):
            raise SpecError(
                f"runtime.shard_hints[{sw!r}] = {s} is out of range for "
                f"{eff} effective shard(s) (runtime.shards = {shards}, "
                f"{len(ordered)} host group(s))")

    # ---- assign groups: hints pin theirs first (pre-loading the
    # shards), then free groups go heaviest-first onto the least-loaded
    # shard (LPT).  Uniform weights degrade to round-robin: free groups
    # stay in min-pid order and each placement bumps one shard by the
    # same amount, so the least-loaded lowest-index shard cycles
    # 0, 1, ..., eff-1, 0, ...
    group_weights = {key: sum(weights.get(pid, 1.0) for pid in pids)
                     for key, pids in ordered}
    pid_shard: dict[int, int] = {}
    group_shard: list[tuple[tuple[str, ...], list[int], int]] = []
    loads = [0.0] * eff
    free: list[tuple[tuple[str, ...], list[int]]] = []
    for key, pids in ordered:
        hinted = sorted({hints[swn] for swn in key if swn in hints})
        if len(hinted) > 1:
            raise SpecError(
                f"runtime.shard_hints conflict for host group {key}: "
                f"hinted shards {hinted}")
        if hinted:
            s = hinted[0]
            loads[s] += group_weights[key]
            group_shard.append((key, pids, s))
            for pid in pids:
                pid_shard[pid] = s
        else:
            free.append((key, pids))
    for key, pids in sorted(free, key=lambda kv: (-group_weights[kv[0]],
                                                  min(kv[1]))):
        s = min(range(eff), key=lambda i: (loads[i], i))
        loads[s] += group_weights[key]
        group_shard.append((key, pids, s))
        for pid in pids:
            pid_shard[pid] = s
    host_shard = {host_names[pid]: s for pid, s in pid_shard.items()}

    # ---- host-attached switches follow the lowest-pid group they serve
    claims: dict[str, tuple[int, int]] = {}       # switch -> (min pid, shard)
    for key, pids, s in group_shard:
        for swn in key:
            cur = claims.get(swn)
            if cur is None or min(pids) < cur[0]:
                claims[swn] = (min(pids), s)
    switch_shard = {swn: s for swn, (_mp, s) in claims.items()}

    # ---- hostless switches (WAN backbones) join their nearest assigned
    # neighbor, preferring the shard with the smallest member pid
    shard_min_pid = {s: min(p for p, ps in pid_shard.items() if ps == s)
                     for s in set(pid_shard.values())}
    remaining = sorted(set(fabric.switches) - set(switch_shard))
    while remaining:
        snapshot = dict(switch_shard)
        progressed = []
        for swn in remaining:
            sw = fabric.switches[swn]
            cands = set()
            for nb in fabric.graph.neighbors(sw):
                label = _node_label(nb)
                if label in snapshot:
                    cands.add(snapshot[label])
                elif label in host_shard:
                    cands.add(host_shard[label])
            if cands:
                switch_shard[swn] = min(
                    cands, key=lambda s: (shard_min_pid.get(s, n), s))
                progressed.append(swn)
        if not progressed:            # disconnected leftovers
            for swn in remaining:
                switch_shard[swn] = 0
            break
        remaining = [swn for swn in remaining if swn not in progressed]

    def node_shard(node) -> int:
        label = _node_label(node)
        if label in switch_shard and label not in host_shard:
            return switch_shard[label]
        return host_shard[label]

    # ---- channel ownership + the cut set
    channel_shard: dict[str, int] = {}
    cut_dest: dict[str, int] = {}
    for a, b, data in fabric.graph.edges(data=True):
        link = data["link"]
        for ch in (link.fwd, link.rev):
            up, down = (a, b) if ch.endpoint is b else (b, a)
            su, sd = node_shard(up), node_shard(down)
            channel_shard[ch.name] = su
            if su != sd:
                if (_node_label(up) not in fabric.switches
                        or _node_label(down) not in fabric.switches):
                    raise SpecError(
                        f"shard plan cuts {ch.name!r}, a host link: hosts "
                        "can never straddle a shard boundary — an HSM "
                        "fabric may only be split across a switch-to-"
                        "switch WAN trunk (adjust runtime.shard_hints)")
                if ch._rng is not None:
                    raise SpecError(
                        f"shard plan cuts {ch.name!r}, which models bit "
                        "errors with a shared rng; only error-free WAN "
                        "trunks can bridge shards")
                if ch.spec.prop_delay_s <= 0:
                    raise SpecError(
                        f"shard plan cuts {ch.name!r} with zero "
                        "propagation delay: the conservative window "
                        "needs positive lookahead on every cut")
                cut_dest[ch.name] = sd
    lookahead = math.inf
    if cut_dest:
        by_name = _index_channels(fabric)
        lookahead = min(by_name[name].spec.prop_delay_s for name in cut_dest)
    return ShardPlan(n_shards=eff, lookahead=lookahead,
                     pid_shard=pid_shard, host_shard=host_shard,
                     switch_shard=switch_shard, channel_shard=channel_shard,
                     cut_dest=cut_dest, shard_loads=loads,
                     group_weights=group_weights)


# --------------------------------------------------------------------------
# worker side
# --------------------------------------------------------------------------

class _Aborted(BaseException):
    """Raised inside a worker when the coordinator aborts the run."""


class _SimulatedCrash(BaseException):
    """A :class:`~repro.faults.WorkerCrash` firing in a thread worker.

    Thread workers cannot ``os._exit`` (it would take the coordinator
    with them), so the chaos seam raises this instead and the worker
    body swallows it *without* sending anything — from the supervisor's
    side a dead thread and a dead process look the same: silence.
    """


class _QueueChannel:
    """Thread-mode stand-in for an mp ``Connection``.

    Mirrors the slice of the ``Connection`` API the supervisor uses:
    ``poll(timeout)`` peeks (buffering one message) so bounded-deadline
    receives work identically over queues and pipes.
    """

    def __init__(self, send_q: _queue.Queue, recv_q: _queue.Queue):
        self._send_q = send_q
        self._recv_q = recv_q
        self._buf: list = []

    def send(self, msg) -> None:
        self._send_q.put(msg)

    def poll(self, timeout: float = 0.0) -> bool:
        if self._buf:
            return True
        try:
            if timeout and timeout > 0:
                item = self._recv_q.get(timeout=timeout)
            else:
                item = self._recv_q.get_nowait()
        except _queue.Empty:
            return False
        self._buf.append(item)
        return True

    def recv(self):
        if self._buf:
            return self._buf.pop(0)
        return self._recv_q.get()

    def close(self) -> None:
        pass                        # queues have nothing to release


class _WorkerState:
    """Mutable per-worker protocol state shared by the runtime patches."""

    def __init__(self, shard_id: int, ctl, attempt: int = 0,
                 transport: str = "thread"):
        self.shard_id = shard_id
        self.ctl = ctl
        self.attempt = attempt      # sharded launch attempt (0 = first)
        self.transport = transport  # "thread" | "process"
        self.outbox: list[CutEvent] = []
        self.seq = 0
        self.window = 0             # 1-based once the report loop starts
        self.ran = False            # did the driver ever call rt.run()?
        self.finished = False
        self.t_final = 0.0
        self.channels: dict[str, Any] = {}
        self.worker_faults: tuple = ()


def _fire_worker_faults(state: _WorkerState) -> None:
    """The deterministic chaos seam: die or stall at a window boundary.

    Fires just before the worker reports for ``state.window``, so a
    :class:`~repro.faults.WorkerCrash` manifests as a *missing* report
    and a :class:`~repro.faults.WorkerStall` as a *late* one — exactly
    the two control-plane failures the supervisor classifies.  Keyed on
    the protocol round counter (and launch attempt), never wall-clock,
    so the same spec kills the same shard at the same point every run.
    """
    for ev in state.worker_faults:
        if not ev.matches(state.shard_id, state.window, state.attempt):
            continue
        if isinstance(ev, WorkerStall):
            time.sleep(ev.stall_s)
        elif isinstance(ev, WorkerCrash):
            if state.transport == "process":
                os._exit(66)
            raise _SimulatedCrash()


def _index_channels(fabric) -> dict[str, Any]:
    chans: dict[str, Any] = {}
    for _a, _b, data in fabric.graph.edges(data=True):
        link = data["link"]
        chans[link.fwd.name] = link.fwd
        chans[link.rev.name] = link.rev
    return chans


def _make_export(ch, dest_shard: int, state: _WorkerState) -> Callable:
    """An owned cut channel's ``_dispatch`` override: serialize + export."""
    from ..atm.signaling import MulticastChannel

    def _export(burst) -> None:
        state.seq += 1
        state.outbox.append(CutEvent(
            arrival=ch.sim.now + ch.spec.prop_delay_s,
            src_shard=state.shard_id, seq=state.seq, dest_shard=dest_shard,
            channel=ch.name, vc_id=burst.vc.vc_id,
            is_mcast=isinstance(burst.vc, MulticastChannel),
            vci=burst.vci, msg_id=burst.msg_id, n_cells=burst.n_cells,
            payload_bytes=burst.payload_bytes, is_final=burst.is_final,
            corrupted=burst.corrupted, enqueued_at=burst.enqueued_at,
            payload=burst.payload))
    return _export


def _inject(state: _WorkerState, cluster, rec: CutEvent) -> None:
    """Re-materialize an imported burst at exactly ``rec.arrival``.

    The burst's VC is rebound to this universe's replica (reassembly is
    keyed by VC object identity) and delivery skips the replica
    channel's queue: serialization was already simulated upstream, only
    the propagation instant matters here.  ``schedule_at`` plants the
    arrival at the exported float exactly — no delay re-arithmetic.
    """
    from ..atm.cell import CellBurst
    sig = cluster.signaling
    vc = (sig.open_mcast if rec.is_mcast else sig.open_vcs)[rec.vc_id]
    ch = state.channels[rec.channel]
    burst = CellBurst(vc=vc, vci=rec.vci, msg_id=rec.msg_id,
                      n_cells=rec.n_cells, payload_bytes=rec.payload_bytes,
                      is_final=rec.is_final, payload=rec.payload,
                      corrupted=rec.corrupted, enqueued_at=rec.enqueued_at)
    sim = cluster.sim
    ev = Event(sim, name=f"cut-arrival:{rec.channel}")
    ev.add_callback(lambda _e: ch.endpoint.receive_burst(burst, ch))
    sim.schedule_at(ev, rec.arrival)


def _patch_runtime(rt, cluster, plan: ShardPlan, state: _WorkerState) -> None:
    """Instance-patch ``rt.start``/``rt.run`` into shard-worker form."""
    from ..core.mps.error_control import MessageLost
    sim = cluster.sim
    shard = state.shard_id
    owned = plan.owned_pids(shard)
    state.channels = _index_channels(cluster.fabric)
    for name, dest in sorted(plan.cut_dest.items()):
        if plan.channel_shard[name] == shard:
            ch = state.channels[name]
            ch._dispatch = _make_export(ch, dest, state)

    def start():
        if rt._started:
            raise RuntimeError("runtime already started")
        rt._started = True
        rt._procs = [None] * len(rt.nodes)
        rt._finish_times = [None] * len(rt.nodes)
        for pid in owned:
            proc = rt.nodes[pid].scheduler.start()
            rt._procs[pid] = proc
            proc.add_callback(
                lambda ev, i=pid: rt._finish_times.__setitem__(i, sim.now))
        return [rt._procs[pid] for pid in owned]

    def run(until=None, max_events=None,
            raise_thread_errors=True, raise_message_lost=True):
        if state.finished:
            raise SpecError(
                "the sharded kernel drives runtime.run() exactly once "
                "per scenario; restructure the driver to a single run")
        if max_events is not None:
            raise SpecError("max_events is not supported on the sharded "
                            "kernel (there is no global event counter)")
        state.ran = True
        if not rt._started:
            rt.start()
        ctl = state.ctl
        ctl.send(("hello", until))
        makespan = 0.0
        while True:
            state.window += 1
            _fire_worker_faults(state)
            done = [t for t in rt._finish_times if t is not None]
            ctl.send(("report", sim.peek(), tuple(state.outbox), sim._now,
                      max(done) if done else None))
            state.outbox.clear()
            msg = ctl.recv()
            kind = msg[0]
            if kind == "window":
                horizon, arrivals = msg[1], msg[2]
                for rec in arrivals:
                    _inject(state, cluster, rec)
                sim.run_below(horizon)
            elif kind == "final":
                state.t_final, makespan = msg[1], msg[2]
                state.finished = True
                break
            elif kind == "abort":
                raise _Aborted()
            else:  # pragma: no cover - protocol invariant
                raise SimulationError(
                    f"unexpected coordinator message {kind!r}")
        # align every universe's clock before telemetry close/export
        sim._now = state.t_final
        # owned-only epilogue, mirroring NcsRuntime.run
        if raise_thread_errors:
            for pid in owned:
                for thread in rt.nodes[pid].scheduler.threads.values():
                    if thread.error is not None:
                        raise thread.error
        for pid in owned:
            proc = rt._procs[pid]
            if proc is not None and proc.triggered and not proc.ok:
                _ = proc.value
        if raise_message_lost:
            lost = [m for pid in owned
                    for m in rt.nodes[pid].mps.lost_messages]
            if rt.resilience is not None:
                lost = [m for m in lost if not rt.resilience.forgives(m)]
            if lost:
                m = lost[0]
                raise MessageLost(
                    f"{len(lost)} message(s) permanently lost (first: "
                    f"{m.kind.value} {m.msg_uid} from process "
                    f"{m.from_process} to process {m.to_process})")
        unfinished = [rt._procs[pid] for pid in owned
                      if rt._procs[pid] is not None
                      and not rt._procs[pid].triggered]
        if rt.resilience is not None:
            unfinished = [rt._procs[pid] for pid in owned
                          if rt._procs[pid] is not None
                          and not rt._procs[pid].triggered
                          and not rt.nodes[pid].mps.host.frozen]
        if unfinished and until is None:
            names = ", ".join(p.name for p in unfinished)
            raise SimulationError(
                f"deadlock: schedulers never finished: {names}")
        return makespan

    rt.start = start
    rt.run = run


def _serialize_result(value, cluster) -> dict:
    """A worker's contribution, flattened to plain picklable structures."""
    tracer = cluster.tracer
    return {
        "value": value,
        "snapshot": cluster.metrics.snapshot(),
        "trace": {
            "timelines": {
                entity: [(iv.start, iv.end, iv.activity.value, iv.label)
                         for iv in tl.intervals]
                for entity, tl in tracer.timelines.items()},
            "events": list(tracer.events),
        },
    }


def _partial_eligible(spec: ScenarioSpec) -> bool:
    """Whether this run may materialize only its own shard.

    Partial construction is gated to runs whose extra machinery never
    touches foreign entities: fault plans arm timers on every host,
    resilience runs a cluster-wide failure detector, and NIC collectives
    program multicast groups on foreign adapters — those replicate.
    """
    return (spec.faults is None and spec.resilience is None
            and spec.collectives != "nic")


def _blueprint_for(spec: ScenarioSpec):
    """The spec topology's blueprint, or ``None`` to plan imperatively.

    Mirrors ``build_cluster``'s kwarg forwarding exactly.  *Any* failure
    (no registered blueprint, rejected options) returns ``None`` so the
    imperative probe path keeps its original error semantics.
    """
    from ..registry import BLUEPRINTS
    try:
        builder = BLUEPRINTS.get(spec.cluster.topology)
        kw = dict(spec.cluster.options)
        if spec.cluster.n_hosts is not None:
            kw["n_hosts"] = spec.cluster.n_hosts
        kw["seed"] = spec.cluster.seed
        kw["trace"] = spec.obs.trace
        kw["metrics"] = spec.obs.metrics
        return builder(**kw)
    except Exception:
        return None


def _pid_weights(spec: ScenarioSpec, n_hosts: int):
    """Blueprint cost model: estimated event weight per pid.

    A site's weight is its hosts times driver intensity; point-to-point
    drivers (``pingpong``, ``stream``) load only pids 0 and 1, so their
    sites should not also absorb an equal share of bystander hosts.
    Everything else drives all pids uniformly (``None`` = all 1.0).
    """
    driver = spec.app.driver if spec.app is not None else None
    if driver in ("pingpong", "stream"):
        return {pid: (1.0 if pid < 2 else 1 / 16) for pid in range(n_hosts)}
    return None


def _run_worker(spec: ScenarioSpec, shard_id: int, ctl,
                attempt: int = 0, transport: str = "thread") -> None:
    """One shard worker: materialize the owned shard (or replicate the
    full universe when the partial gate fails), drive it by windows."""
    try:
        driver = APP_DRIVERS.get(spec.app.driver)
        run = ScenarioRun(spec)
        state = _WorkerState(shard_id, ctl, attempt=attempt,
                             transport=transport)
        if spec.faults is not None:
            state.worker_faults = tuple(
                ev for ev in spec.faults.to_plan().worker_events
                if ev.shard == shard_id and ev.attempt == attempt)
        plan = None
        bp = _blueprint_for(spec) if _partial_eligible(spec) else None
        if bp is not None:
            from ..net.blueprint import PlanView, materialize
            bp_plan = plan_shards(
                PlanView(bp), spec.shards, spec.shard_hints,
                pid_weights=_pid_weights(spec, bp.n_hosts))
            if bp_plan.n_shards > 1:
                owned = {swn for swn, s in bp_plan.switch_shard.items()
                         if s == shard_id}
                # pre-seeding run.cluster routes the partial cluster
                # through build_runtime's normal bring-up
                run.cluster = materialize(bp, owned_switches=owned)
                plan = bp_plan
        rt = run.runtime                    # cluster + faults + barriers
        cluster = run.cluster
        if plan is None:                    # replicated full universe
            plan = plan_shards(cluster, spec.shards, spec.shard_hints,
                               pid_weights=_pid_weights(spec, cluster.n_hosts))
        _patch_runtime(rt, cluster, plan, state)
        value = driver(run)
        if not state.ran:
            raise SpecError(
                f"driver {spec.app.driver!r} never drove the spec-built "
                "runtime; the sharded kernel requires a runtime driver "
                "(self-contained apps build their own cluster)")
        cluster.sim._now = state.t_final
        cluster.tracer.close_all()
        payload = _serialize_result(value, cluster)
        try:
            ctl.send(("done", payload))
        except Exception as exc:
            ctl.send(("error", RuntimeError(
                f"shard {shard_id}: result not transferable: {exc!r}")))
    except _SimulatedCrash:
        return                      # die silently, like the real thing
    except _Aborted:
        ctl.send(("aborted",))
    except BaseException as exc:  # noqa: BLE001 - reported to coordinator
        try:
            ctl.send(("error", exc))
        except Exception:
            ctl.send(("error", RuntimeError(
                f"shard {shard_id}: {type(exc).__name__}: {exc}")))


def _worker_process_main(doc_json: str, shard_id: int, conn,
                         attempt: int = 0) -> None:
    """Forked-child entry: rebuild the spec and run the worker body."""
    from ..config.build import ensure_components
    ensure_components()
    spec = ScenarioSpec.from_dict(json.loads(doc_json))
    _run_worker(spec, shard_id, conn, attempt=attempt, transport="process")


# --------------------------------------------------------------------------
# coordinator + supervision
# --------------------------------------------------------------------------

class _Supervisor:
    """Watchdog wrapping every coordinator-side control-queue receive.

    Each :meth:`recv` is bounded by the spec's barrier deadline and
    interleaved with liveness polls every ``liveness_poll_s``, so a
    crashed worker is detected within one poll interval — not after the
    full deadline — while a wedged-but-alive worker is declared
    ``hung`` only once the deadline truly expires.  All timing is
    wall-clock (:func:`time.monotonic`): the supervisor never reads or
    feeds simulated time, which is what keeps a supervised run
    byte-identical to an unsupervised one.
    """

    def __init__(self, ctls, workers, mode: str, spec: SupervisionSpec):
        self.ctls = ctls
        self.workers = workers
        self.mode = mode
        self.spec = spec
        self.window = 0                 # current coordinator round
        now = time.monotonic()
        self.last_good = [now] * len(ctls)

    def fail(self, shard: int, reason: str,
             detail: str = "") -> ShardWorkerError:
        return ShardWorkerError(shard=shard, window=self.window,
                                reason=reason, detail=detail,
                                last_good=self.last_good[shard])

    def recv(self, shard: int, timeout: Optional[float] = None):
        """One supervised receive; raises :class:`ShardWorkerError`."""
        budget = self.spec.barrier_deadline_s if timeout is None else timeout
        deadline = time.monotonic() + budget
        ctl = self.ctls[shard]
        while True:
            remaining = deadline - time.monotonic()
            step = min(self.spec.liveness_poll_s, max(remaining, 0.0))
            try:
                ready = ctl.poll(step)
            except (EOFError, OSError) as exc:
                raise self.fail(shard, "crashed",
                                f"control channel failed: {exc!r}")
            if ready:
                try:
                    msg = ctl.recv()
                except EOFError:
                    raise self.fail(shard, "crashed",
                                    "worker closed its control channel "
                                    "without reporting") from None
                except OSError as exc:
                    raise self.fail(shard, "crashed",
                                    f"control channel failed: {exc!r}")
                except Exception as exc:
                    raise self.fail(shard, "poisoned",
                                    f"undecodable control payload: {exc!r}")
                self.last_good[shard] = time.monotonic()
                return msg
            if not self.workers[shard].is_alive():
                # one last zero-timeout peek: the worker may have sent
                # its message and exited between our poll and this check
                try:
                    if ctl.poll(0):
                        continue
                except (EOFError, OSError):
                    pass
                if self.mode == "process":
                    code = self.workers[shard].exitcode
                    detail = f"worker process exited with code {code}"
                else:
                    detail = "worker thread exited without reporting"
                raise self.fail(shard, "crashed", detail)
            if remaining <= 0:
                raise self.fail(
                    shard, "hung",
                    f"no report within the {budget:g}s barrier deadline "
                    "(worker still alive)")

    def abort(self, failed: Optional[int], active, errors) -> None:
        """Stop every worker after a failure, draining survivors.

        The abort is sent to the *failed* shard too: a stalled thread
        worker eventually wakes, reads it and exits cleanly instead of
        blocking forever on a control queue nobody serves anymore.
        Survivor drains are bounded by the worker grace period — a
        worker that wedges while aborting is simply left for teardown.
        """
        for s in active:
            if s == failed:
                continue
            try:
                self.ctls[s].send(("abort",))
            except Exception:
                pass
        if failed is not None:
            try:
                self.ctls[failed].send(("abort",))
            except Exception:
                pass
        for s in active:
            if s == failed:
                continue
            while True:
                try:
                    msg = self.recv(s, timeout=self.spec.worker_grace_s)
                except ShardWorkerError:
                    break           # died/wedged mid-abort: teardown's job
                if msg[0] in ("aborted", "done"):
                    break
                if msg[0] == "error":
                    errors.setdefault(s, msg[1])
                    break


def _coordinate(ctls, workers, plan: ShardPlan,
                supervision: SupervisionSpec, mode: str) -> list[dict]:
    """Drive the window protocol; return per-shard result payloads.

    Worker-*reported* errors (driver exceptions, spec violations) abort
    the survivors and re-raise the worker's own exception, exactly as
    before supervision existed.  Worker *silence* — crash, hang,
    poisoned channel — surfaces as :class:`ShardWorkerError` so the
    recovery policy in :func:`run_scenario_sharded` can act on it.
    """
    S = plan.n_shards
    sup = _Supervisor(ctls, workers, mode, supervision)
    active = list(range(S))
    errors: dict[int, BaseException] = {}

    def fail_over(exc: ShardWorkerError):
        sup.abort(exc.shard, active, errors)
        raise exc

    def reported(errors) -> None:
        sup.abort(None, [s for s in active if s not in errors], errors)
        raise errors[min(errors)]

    hellos: dict[int, Any] = {}
    for s in active:
        try:
            msg = sup.recv(s)
        except ShardWorkerError as exc:
            fail_over(exc)
        if msg[0] == "error":
            errors[s] = msg[1]
        else:
            hellos[s] = msg[1]
    if errors:
        reported(errors)
    until = hellos[0]
    if any(hellos[s] != until for s in active):
        errors[0] = SpecError(
            f"workers disagree on run(until=...): {sorted(hellos.items())}")
        reported(errors)

    pending: list[list[CutEvent]] = [[] for _ in range(S)]
    while True:
        sup.window += 1
        reports: dict[int, tuple] = {}
        for s in active:
            try:
                msg = sup.recv(s)
            except ShardWorkerError as exc:
                fail_over(exc)
            if msg[0] == "error":
                errors[s] = msg[1]
            else:
                reports[s] = msg
        if errors:
            reported(errors)
        for s in active:
            for rec in reports[s][2]:
                pending[rec.dest_shard].append(rec)
        peeks = [reports[s][1] for s in active]
        arrivals = [rec.arrival for box in pending for rec in box]
        gm, horizon = next_window(peeks, arrivals, plan.lookahead)
        if math.isinf(gm) or (until is not None and gm > until):
            if until is not None and not math.isinf(gm):
                t_final = until
            else:
                t_final = max(reports[s][3] for s in active)
            done = [reports[s][4] for s in active
                    if reports[s][4] is not None]
            makespan = max(done) if done else t_final
            for s in active:
                ctls[s].send(("final", t_final, makespan))
            break
        if until is not None:
            horizon = min(horizon, math.nextafter(until, math.inf))
        for s in active:
            box = merge_cut_events([pending[s]])
            pending[s] = []
            ctls[s].send(("window", horizon, tuple(box)))

    payloads: list[Optional[dict]] = [None] * S
    for s in active:
        try:
            msg = sup.recv(s)
        except ShardWorkerError as exc:
            fail_over(exc)
        if msg[0] == "error":
            errors[s] = msg[1]
        elif msg[0] == "done":
            payloads[s] = msg[1]
    if errors:
        raise errors[min(errors)]
    return payloads  # type: ignore[return-value]


# --------------------------------------------------------------------------
# deterministic merges + single-universe facades
# --------------------------------------------------------------------------

def _parse_labels(label_str: str) -> dict[str, str]:
    if not label_str:
        return {}
    return dict(kv.split("=", 1) for kv in label_str.split(","))


def _merge_leaf(name: str, label_str: str, snaps: list[dict],
                plan: ShardPlan):
    """One metric series, resolved to its owning shard (or summed)."""
    labels = _parse_labels(label_str)
    if "pid" in labels:
        owner = plan.pid_shard.get(int(labels["pid"]), 0)
    elif "host" in labels:
        owner = plan.host_shard.get(labels["host"], 0)
    elif "switch" in labels:
        owner = plan.switch_shard.get(labels["switch"], 0)
    elif "link" in labels:
        owner = plan.channel_shard.get(labels["link"], 0)
    elif name.startswith("sim."):
        vals = [s.get(name, {}).get(label_str, 0) for s in snaps]
        if all(isinstance(v, (int, float)) for v in vals):
            return sum(vals)
        owner = 0
    elif name.startswith("faults."):
        owner = 0
    else:
        # partial construction: only shards that materialized the
        # entity publish the series, so merge over present values
        vals = [s[name][label_str] for s in snaps
                if label_str in s.get(name, {})]
        if vals and all(isinstance(v, (int, float)) for v in vals):
            return max(vals)
        owner = 0
    present = [s for s in snaps if label_str in s.get(name, {})]
    base = present[0][name][label_str] if present else 0
    return snaps[owner].get(name, {}).get(label_str, base)


def _merge_snapshots(snaps: list[dict], plan: ShardPlan) -> dict:
    """Rebuild the single-kernel metric snapshot from per-shard views.

    Each series is taken wholesale from the shard that owns its labeled
    entity.  Under replicated construction every shard publishes every
    series; under partial construction a shard only publishes what it
    materialized, so the merged snapshot is the union across shards
    (first-seen order — identical to shard 0's order when replicated).
    Unlabeled ``sim.*`` meters are summed (each worker counts its own
    calendar), ``faults.*`` come from shard 0 (fault timers fire
    identically everywhere).
    """
    out: dict[str, dict[str, Any]] = {}
    for snap in snaps:
        for name, series in snap.items():
            dst = out.setdefault(name, {})
            for label_str in series:
                if label_str not in dst:
                    dst[label_str] = _merge_leaf(name, label_str, snaps,
                                                 plan)
    return out


def _entity_shard(entity: str, plan: ShardPlan) -> int:
    """Which shard's tracer records are authoritative for ``entity``."""
    if entity.startswith("fault:"):
        return 0
    if ":" in entity:
        kind, _, rest = entity.partition(":")
        if kind == "nic":
            return plan.host_shard.get(rest, 0)
        if kind in ("ncs", "ec", "detector", "failover") and rest.isdigit():
            return plan.pid_shard.get(int(rest), 0)
        if kind == "resilience":
            return plan.pid_shard.get(0, 0)          # coordinator home
        return 0
    host = entity.split("/", 1)[0]
    if host in plan.host_shard:
        return plan.host_shard[host]
    return plan.switch_shard.get(host, 0)


def _merge_traces(traces: list[dict], plan: ShardPlan):
    """Owner-filtered union of timelines + shard-ordered event concat.

    ``repro.obs.export.iter_records`` stable-sorts records by
    ``(t, kind, entity)``, so as long as each entity's records come
    from exactly one shard (preserving that shard's per-entity order)
    the exported Chrome trace is identical to the single-kernel one.
    """
    timelines: dict[str, Timeline] = {}
    events: list[tuple] = []
    for s, tr in enumerate(traces):
        for entity, rows in tr["timelines"].items():
            if _entity_shard(entity, plan) == s:
                tl = Timeline(entity)
                tl.intervals = [Interval(a, b, Activity(act), lab)
                                for a, b, act, lab in rows]
                timelines[entity] = tl
        events.extend(ev for ev in tr["events"]
                      if _entity_shard(ev[1], plan) == s)
    return {e: timelines[e] for e in sorted(timelines)}, events


def _merge_values(values: list):
    """Merge per-shard driver return values into the single-kernel one.

    Rules: equal values pass through; dicts merge per key; lists keep
    the longest variant (per-pid accumulators are empty on ghosts);
    unequal numbers keep the max (counts only grow where the pid is
    real); ``None`` ghosts defer to any real value.  Drivers that fold
    cross-pid state into scalars locally (``collective``'s ok-flags,
    ``stream``'s mean latency) are outside this contract — use per-pid
    structures instead.
    """
    vals = [v for v in values if v is not None]
    if not vals:
        return None
    head = vals[0]
    try:
        if all(bool(v == head) for v in vals[1:]):
            return head
    except Exception:
        pass
    if all(isinstance(v, dict) for v in vals):
        return {k: _merge_values([v.get(k) for v in vals]) for k in head}
    if all(isinstance(v, list) for v in vals):
        return max(vals, key=len)
    if all(isinstance(v, (int, float)) for v in vals):
        return max(vals)
    return head


class MergedMetrics:
    """A read-only :class:`~repro.obs.registry.MetricsRegistry` facade
    over the merged snapshot (enough surface for exports, fleet KPI
    extraction and ``repro.run``'s summaries)."""

    def __init__(self, snapshot: dict):
        self._snapshot = snapshot
        self.enabled = True

    def snapshot(self) -> dict:
        return self._snapshot

    def total(self, name: str):
        total = 0
        for leaf in self._snapshot.get(name, {}).values():
            if isinstance(leaf, (int, float)):
                total += leaf
            elif isinstance(leaf, dict):
                total += leaf.get("sum", 0)
        return total

    def value(self, name: str, default=0, **labels):
        key = ",".join(f"{k}={v}" for k, v in
                       sorted((k, str(v)) for k, v in labels.items()))
        return self._snapshot.get(name, {}).get(key, default)


class MergedTracer:
    """A :class:`~repro.sim.Tracer` facade over merged shard traces."""

    def __init__(self, timelines: dict[str, Timeline], events: list[tuple]):
        self.timelines = timelines
        self.events = events
        self.enabled = True

    def close_all(self) -> None:
        pass                       # workers closed their intervals already

    def timeline(self, entity: str) -> Timeline:
        tl = self.timelines.get(entity)
        if tl is None:
            tl = self.timelines[entity] = Timeline(entity)
        return tl

    def points(self, kind=None, entity=None) -> list[tuple]:
        return [e for e in self.events
                if (kind is None or e[2] == kind)
                and (entity is None or e[1] == entity)]


@dataclass
class ShardedClusterView:
    """The slice of ``Cluster`` the post-run consumers actually touch."""

    tracer: MergedTracer
    metrics: MergedMetrics
    n_hosts: int


# --------------------------------------------------------------------------
# the registered kernel
# --------------------------------------------------------------------------

def _launch_threads(spec: ScenarioSpec, n: int, attempt: int = 0):
    ctls, workers = [], []
    for s in range(n):
        to_worker: _queue.Queue = _queue.Queue()
        from_worker: _queue.Queue = _queue.Queue()
        worker_ctl = _QueueChannel(from_worker, to_worker)
        ctls.append(_QueueChannel(to_worker, from_worker))
        workers.append(threading.Thread(
            target=_run_worker, args=(spec, s, worker_ctl),
            kwargs={"attempt": attempt, "transport": "thread"},
            name=f"shard-{s}", daemon=True))
    for t in workers:
        t.start()
    return ctls, workers


def _launch_processes(spec: ScenarioSpec, n: int, attempt: int = 0):
    ctx = multiprocessing.get_context("fork")
    doc = spec.canonical_json()
    ctls, workers = [], []
    for s in range(n):
        parent_conn, child_conn = ctx.Pipe()
        p = ctx.Process(target=_worker_process_main,
                        args=(doc, s, child_conn, attempt),
                        name=f"shard-{s}")
        ctls.append(parent_conn)
        workers.append(p)
    for p in workers:
        p.start()
    return ctls, workers


def _shutdown_workers(ctls, workers, mode: str, grace: float) -> list[int]:
    """Deterministic teardown: abort, join with a grace period, reap.

    Every worker gets an explicit ``("abort",)`` before the join — a
    worker still in its protocol loop exits at its next receive instead
    of leaking, and one that already finished just ignores queue
    garbage.  Process workers that outlive the grace period are
    ``terminate()``d then ``kill()``ed; thread workers cannot be killed,
    so their shard ids are *returned* for the caller to act on (raise on
    the success path, tolerate on the failure path — a stalled chaos
    thread wakes, reads its abort and exits on its own).
    """
    for ctl in ctls:
        try:
            ctl.send(("abort",))
        except Exception:
            pass
    for w in workers:
        w.join(timeout=grace)
    leaked = [s for s, w in enumerate(workers) if w.is_alive()]
    if mode == "process":
        for s in leaked:              # pragma: no cover - crash cleanup
            workers[s].terminate()
        for s in leaked:              # pragma: no cover - crash cleanup
            workers[s].join(timeout=grace)
            if workers[s].is_alive():
                workers[s].kill()
                workers[s].join(timeout=grace)
        for ctl in ctls:
            try:
                ctl.close()
            except Exception:
                pass
        leaked = [s for s in leaked if workers[s].is_alive()]
    return leaked


def _fallback_single(spec: ScenarioSpec, reason: str, detail: str,
                     failures=(), retries: int = 0) -> ScenarioResult:
    """Run the single kernel — loudly when ``shards > 1`` degrades.

    ``reason`` is a short slug (``"trivial-plan"``, ``"partial-cluster"``,
    ``"worker-crashed"``, ...) stamped as the ``reason=`` label on the
    ``kernel.shard_fallback`` counter, so fleets can tell a topology
    that legitimately collapses apart from a recovery degradation;
    ``detail`` is the human sentence for the warning.  When the
    fallback *recovers* from worker failures, the ``kernel.recovery.*``
    family is stamped too.
    """
    degraded = spec.shards > 1
    if degraded:
        warnings.warn(ShardFallbackWarning(
            f"scenario {spec.name!r}: runtime.shards = {spec.shards} "
            f"falls back to the single kernel [{reason}]: {detail}"),
            stacklevel=3)
        logger.info("scenario %r: shard fallback [%s]: %s",
                    spec.name, reason, detail)
    result = KERNELS.get("single")(spec)
    if degraded:
        metrics = getattr(result.cluster, "metrics", None)
        if metrics is not None and hasattr(metrics, "counter"):
            metrics.counter(
                "kernel.shard_fallback",
                help="sharded-kernel runs degraded to the single kernel",
                reason=reason).inc()
        if failures:
            stamp_recovery(metrics, getattr(result.cluster, "tracer", None),
                           failures, retries=retries, fallback_reason=reason)
    return result


@KERNELS.register(
    "sharded",
    help="conservative parallel kernel: one worker universe per host group")
def run_scenario_sharded(spec: ScenarioSpec,
                         mode: Optional[str] = None) -> ScenarioResult:
    """Execute ``spec`` across shard workers and merge one result view.

    ``mode`` is ``"process"`` (forked workers, real parallelism) or
    ``"thread"`` (in-process workers, used by tests and platforms
    without ``fork``); default :data:`DEFAULT_MODE`.  When the plan
    collapses to one shard the registered ``single`` kernel runs
    instead, bit-identically (with a :class:`ShardFallbackWarning` if
    the spec asked for more).

    Execution is supervised: worker failures (crash, hang, poisoned
    channel) are classified into :class:`ShardWorkerError` and handled
    per ``spec.supervision.policy`` — relaunch the sharded run up to
    ``max_retries`` times, degrade to the single kernel, or raise.
    Either recovery is deterministic; a recovered run's behaviour is
    byte-identical to an undisturbed one, with the recovery itself
    visible in ``kernel.recovery.*``.

    Planning is blueprint-first: when the topology has a registered
    blueprint the plan comes from a :class:`~repro.net.blueprint.
    PlanView` over the declarative graph — no cluster is ever built in
    the coordinator.  Topologies without one fall back to probing an
    imperatively built cluster, exactly as before.
    """
    from ..config.build import ensure_components
    ensure_components()
    if spec.app is None:
        raise SpecError(
            f"scenario {spec.name!r} has no [app] table; nothing to run "
            "(specs without an app can still be built via build_runtime)")
    APP_DRIVERS.get(spec.app.driver)          # fail fast on unknown names
    bp = _blueprint_for(spec)
    if bp is not None:
        from ..net.blueprint import PlanView
        n_hosts = bp.n_hosts
        plan = plan_shards(PlanView(bp), spec.shards, spec.shard_hints,
                           pid_weights=_pid_weights(spec, n_hosts))
    else:
        try:
            probe = build_cluster(spec.cluster, spec.obs)
        except SpecError:
            # Self-contained drivers (the paper's table apps) build
            # their own platform cluster and leave the spec's cluster
            # table partial — there is nothing to partition, so the
            # single kernel runs (and re-raises if the spec is
            # genuinely broken).
            return _fallback_single(
                spec, "partial-cluster",
                "the spec's cluster table is partial (self-contained "
                "drivers build their own cluster)")
        n_hosts = probe.n_hosts
        plan = plan_shards(probe, spec.shards, spec.shard_hints,
                           pid_weights=_pid_weights(spec, n_hosts))
    if plan.n_shards <= 1:
        return _fallback_single(
            spec, "trivial-plan",
            "the topology collapses to one shard (a shared LAN "
            "medium, no ATM fabric, or a single host group)")
    partial = bp is not None and _partial_eligible(spec)
    logger.info(
        "scenario %r: %d shard(s), lookahead %.6gs, loads %s, %s "
        "construction", spec.name, plan.n_shards, plan.lookahead,
        [round(w, 3) for w in plan.shard_loads],
        "partial" if partial else "replicated")
    mode = mode or DEFAULT_MODE
    if mode not in ("thread", "process"):
        raise SpecError(f"unknown sharded-kernel mode {mode!r}; "
                        "expected 'thread' or 'process'")
    launch = _launch_threads if mode == "thread" else _launch_processes
    supervision = spec.supervision
    failures: list[ShardWorkerError] = []
    attempt = 0
    while True:
        ctls, workers = launch(spec, plan.n_shards, attempt)
        try:
            payloads = _coordinate(ctls, workers, plan, supervision, mode)
        except ShardWorkerError as err:
            _shutdown_workers(ctls, workers, mode,
                              supervision.worker_grace_s)
            failures.append(err)
            logger.warning("scenario %r: attempt %d: %s",
                           spec.name, attempt, err)
            if attempt < supervision.retries_allowed:
                attempt += 1
                continue
            if supervision.falls_back:
                return _fallback_single(
                    spec, f"worker-{err.reason}", str(err),
                    failures=failures, retries=attempt)
            raise
        except BaseException:
            # worker-reported errors (driver bugs, spec violations) and
            # coordinator crashes: tear down and re-raise untouched —
            # recovery is only for substrate failures
            _shutdown_workers(ctls, workers, mode,
                              supervision.worker_grace_s)
            raise
        leaked = _shutdown_workers(ctls, workers, mode,
                                   supervision.worker_grace_s)
        if leaked:
            raise ShardWorkerError(
                shard=leaked[0], window=-1, reason="hung",
                detail=(f"worker thread(s) {leaked} never joined within "
                        f"the {supervision.worker_grace_s:g}s grace "
                        "period after a completed run"))
        break
    value = _merge_values([p["value"] for p in payloads])
    snapshot = _merge_snapshots([p["snapshot"] for p in payloads], plan)
    # KPI-stamp the plan choice (behavior walls strip "kernel." names)
    snapshot["kernel.shards"] = {"": plan.n_shards}
    snapshot["kernel.partial_construction"] = {"": 1 if partial else 0}
    if math.isfinite(plan.lookahead):
        snapshot["kernel.lookahead_s"] = {"": plan.lookahead}
    snapshot["kernel.shard_load"] = {
        f"shard={s}": w for s, w in enumerate(plan.shard_loads)}
    timelines, events = _merge_traces([p["trace"] for p in payloads], plan)
    if failures:
        # the run *recovered*: say so in the snapshot and on the trace.
        # kernel.* series and the supervisor entity are substrate
        # telemetry — behaviour walls strip both, preserving the
        # byte-identity guarantee for recovered runs.
        stamp_recovery_snapshot(snapshot, failures, retries=attempt)
        events.extend((0.0, SUPERVISOR_ENTITY, "kernel.recovery", str(f))
                      for f in failures)
    view = ShardedClusterView(tracer=MergedTracer(timelines, events),
                              metrics=MergedMetrics(snapshot),
                              n_hosts=n_hosts)
    result = ScenarioResult(spec, value, view, None)
    _export_obs(result)
    return result
