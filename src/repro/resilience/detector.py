"""Heartbeat failure detection and cluster membership.

Each NCS process runs one more system thread next to Fig 8's
send/recv/FC/EC threads: a heartbeat thread that broadcasts a
:data:`~repro.core.mps.message.ControlKind.HEARTBEAT` beacon to every
peer each ``heartbeat_interval_s`` and scans its timestamped membership
view for silence.  A peer unheard-of for ``suspect_after_s`` becomes
SUSPECT; for ``dead_after_s``, DEAD.  A heartbeat from a SUSPECT or
DEAD peer immediately restores it to ALIVE — a healed partition rejoins
without operator action.

Heartbeats are fire-and-forget (not in ``RELIABLE_KINDS``): they are
never acked, deduplicated or retransmitted, so a lost beacon costs
nothing and the detector's only evidence is arrival times.  Because
they are sent through the node's regular transport, a failover
transport carries them over NSM while the ATM path is down — degraded
peers still prove liveness, so degradation is never mistaken for death.

On a confirmed death the detector tells error control to
``abandon_peer``: retransmissions to a corpse stop without poisoning
the sender (the resilience layer owns recovery from here — see the
work-reassignment driver in :mod:`repro.apps.resilient`).

Quorum is partition-aware: a node is *in quorum* while it can account
for a strict majority of the cluster (itself plus every peer not DEAD).
Coordinators consult this before reassigning work so both sides of a
split never both claim the same units.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, List

from ..core.mps.core import CONTROL_BYTES, SendRequest
from ..core.mps.message import ANY_THREAD, ControlKind, NcsMessage
from ..core.mts import ops
from ..core.mts.scheduler import SYSTEM_PRIORITY

__all__ = ["PeerState", "HeartbeatDetector", "ClusterResilience"]


class PeerState(enum.Enum):
    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"


class HeartbeatDetector:
    """Per-node failure detector (one per NCS process)."""

    def __init__(self, mps: Any, heartbeat_interval_s: float = 0.02,
                 suspect_after_s: float = 0.06, dead_after_s: float = 0.15):
        if heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if not (heartbeat_interval_s < suspect_after_s < dead_after_s):
            raise ValueError(
                "need heartbeat_interval_s < suspect_after_s < dead_after_s")
        self.mps = mps
        self.sim = mps.sim
        self.pid = mps.pid
        self.n_hosts = mps.cluster.n_hosts
        self.heartbeat_interval_s = heartbeat_interval_s
        self.suspect_after_s = suspect_after_s
        self.dead_after_s = dead_after_s
        self.peers = [p for p in range(self.n_hosts) if p != self.pid]
        now = self.sim.now
        #: pid -> sim time of last heartbeat (or attach time)
        self.last_seen: Dict[int, float] = {p: now for p in self.peers}
        self.states: Dict[int, PeerState] = {
            p: PeerState.ALIVE for p in self.peers}
        #: peers this node declared DEAD at any point in the run (a
        #: later rejoin does not erase the record — the runtime uses it
        #: to forgive message losses the resilience layer already
        #: compensated for)
        self.ever_dead: set[int] = set()
        #: callbacks fn(pid) fired on ALIVE/SUSPECT -> DEAD
        self.on_peer_dead: List[Callable[[int], None]] = []
        #: callbacks fn(pid) fired on DEAD -> ALIVE (rejoin)
        self.on_peer_recovered: List[Callable[[int], None]] = []
        #: statistics
        self.beats_sent = 0
        self.suspicions = 0
        self.deaths = 0
        self.rejoins = 0
        _m = self.sim.metrics
        self._m_beats = _m.counter(
            "resilience.heartbeats_sent", help="liveness beacons broadcast",
            pid=self.pid)
        self._m_suspicions = _m.counter(
            "resilience.suspicions", help="peers marked SUSPECT", pid=self.pid)
        self._m_deaths = _m.counter(
            "resilience.deaths", help="peers declared DEAD", pid=self.pid)
        self._m_rejoins = _m.counter(
            "resilience.rejoins", help="DEAD peers restored by a heartbeat",
            pid=self.pid)
        self._m_alive = _m.gauge(
            "resilience.alive_peers", help="peers currently ALIVE (excl self)",
            pid=self.pid)
        self._m_alive.set(len(self.peers))

    # ------------------------------------------------------------ system thread
    def thread_body(self):
        def body(tctx):
            while True:
                self._beat()
                yield ops.Sleep(self.heartbeat_interval_s)
                self._scan()
        return body

    def _beat(self) -> None:
        for peer in self.peers:
            self.mps._enqueue_send(SendRequest(NcsMessage(
                from_thread=ANY_THREAD, from_process=self.pid,
                to_thread=ANY_THREAD, to_process=peer,
                data=self.sim.now, size=CONTROL_BYTES,
                kind=ControlKind.HEARTBEAT,
                msg_uid=self.mps._next_uid())))
        self.beats_sent += len(self.peers)
        self._m_beats.inc(len(self.peers))

    def _scan(self) -> None:
        now = self.sim.now
        for peer in self.peers:
            state = self.states[peer]
            if state is PeerState.DEAD:
                continue   # only a heartbeat resurrects a corpse
            silent_for = now - self.last_seen[peer]
            if silent_for >= self.dead_after_s:
                self.states[peer] = PeerState.DEAD
                self.ever_dead.add(peer)
                self.deaths += 1
                self._m_deaths.inc()
                self.mps.host.tracer.point(
                    f"detector:{self.pid}", "peer-dead", peer)
                abandon = getattr(self.mps.ec, "abandon_peer", None)
                if abandon is not None:
                    abandon(peer)
                for cb in self.on_peer_dead:
                    cb(peer)
            elif silent_for >= self.suspect_after_s \
                    and state is PeerState.ALIVE:
                self.states[peer] = PeerState.SUSPECT
                self.suspicions += 1
                self._m_suspicions.inc()
                self.mps.host.tracer.point(
                    f"detector:{self.pid}", "peer-suspect", peer)
        self._m_alive.set(sum(
            1 for s in self.states.values() if s is PeerState.ALIVE))

    # --------------------------------------------------------------- evidence
    def on_heartbeat(self, pid: int, sent_at: Any) -> None:
        """MPS control dispatch: a beacon from ``pid`` arrived."""
        if pid == self.pid or pid not in self.states:
            return
        self.last_seen[pid] = self.sim.now
        state = self.states[pid]
        if state is PeerState.ALIVE:
            return
        self.states[pid] = PeerState.ALIVE
        self.mps.host.tracer.point(
            f"detector:{self.pid}", "peer-recovered", pid)
        if state is PeerState.DEAD:
            self.rejoins += 1
            self._m_rejoins.inc()
            for cb in self.on_peer_recovered:
                cb(pid)

    # ------------------------------------------------------------- membership
    def state_of(self, pid: int) -> PeerState:
        if pid == self.pid:
            return PeerState.ALIVE
        return self.states[pid]

    def is_dead(self, pid: int) -> bool:
        return pid != self.pid and self.states.get(pid) is PeerState.DEAD

    def view(self) -> Dict[int, PeerState]:
        """This node's current belief about every process (incl. self)."""
        v = {self.pid: PeerState.ALIVE}
        v.update(self.states)
        return dict(sorted(v.items()))

    def membership(self) -> Dict[int, tuple]:
        """Timestamped view: pid -> (state, last_seen sim time)."""
        m = {self.pid: (PeerState.ALIVE, self.sim.now)}
        for p in self.peers:
            m[p] = (self.states[p], self.last_seen[p])
        return dict(sorted(m.items()))

    def alive_count(self) -> int:
        """Processes currently believed reachable (incl. self)."""
        return 1 + sum(1 for s in self.states.values()
                       if s is not PeerState.DEAD)

    def in_quorum(self) -> bool:
        """True while this node can account for a strict majority."""
        return 2 * self.alive_count() > self.n_hosts


class ClusterResilience:
    """Cluster-wide resilience bring-up: one detector per node.

    Construct, pass to :class:`repro.core.api.NcsRuntime` as
    ``resilience=``, and the runtime calls :meth:`attach` during
    bring-up.  Attributes double as the configuration the
    ``hsm-failover`` transport builder reads for its breakers.
    """

    def __init__(self, heartbeat_interval_s: float = 0.02,
                 suspect_after_s: float = 0.06, dead_after_s: float = 0.15,
                 failure_threshold: int = 3, reset_timeout_s: float = 0.2,
                 probe_successes: int = 2):
        self.heartbeat_interval_s = heartbeat_interval_s
        self.suspect_after_s = suspect_after_s
        self.dead_after_s = dead_after_s
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.probe_successes = probe_successes
        self.runtime: Any = None
        self.detectors: Dict[int, HeartbeatDetector] = {}

    def attach(self, runtime: Any) -> None:
        """Install a detector + heartbeat system thread on every node."""
        self.runtime = runtime
        for node in runtime.nodes:
            det = HeartbeatDetector(
                node.mps, self.heartbeat_interval_s,
                self.suspect_after_s, self.dead_after_s)
            node.mps.resilience = det
            self.detectors[node.pid] = det
            node.scheduler.t_create(
                det.thread_body(), (), SYSTEM_PRIORITY, name="sys-hb",
                is_system=True)

    def detector(self, pid: int) -> HeartbeatDetector:
        return self.detectors[pid]

    def view(self, pid: int) -> Dict[int, PeerState]:
        return self.detectors[pid].view()

    def forgives(self, msg: Any) -> bool:
        """Should the runtime forgive this permanently-lost message?

        Losses *to* a destination that is crashed now, or that the
        sender's detector declared dead at any point, are the expected
        cost of a failure the resilience layer already handled (abandon
        + reassignment); surfacing them as :class:`MessageLost` at the
        end of an otherwise-recovered run would turn every survived
        crash — and every healed partition — into a test failure."""
        dest = msg.to_process
        if self.runtime is not None \
                and self.runtime.cluster.host(dest).frozen:
            return True
        det = self.detectors.get(msg.from_process)
        return det is not None and dest in det.ever_dead
