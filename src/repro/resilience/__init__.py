"""Self-healing NCS: failure detection, degradation, adaptive recovery.

The paper's NCS assumes a healthy NYNET; this package is the layer that
keeps an application running when the network or a host is not:

* :mod:`~repro.resilience.detector` — heartbeat failure detector per
  node (one more Fig 8 system thread), timestamped membership views,
  partition-aware quorum, EC abandon on confirmed death;
* :mod:`~repro.resilience.breaker` — per-peer circuit breaker state
  machine (CLOSED/OPEN/HALF_OPEN), driven entirely by simulated time;
* :mod:`~repro.resilience.failover` — the ``hsm-failover`` transport:
  HSM (ATM) protected by breakers, degrading to NSM (TCP) and probing
  its way back;
* :mod:`~repro.resilience.adaptive` — the ``adaptive`` error control:
  Jacobson SRTT/RTTVAR retransmission timers, Karn's rule, per-message
  retry budgets and deadlines.

Importing this package registers ``hsm-failover`` with ``TRANSPORTS``
and ``adaptive`` with ``ERROR_CONTROLS``.  Everything is opt-in: a
runtime without a :class:`ClusterResilience` attached behaves
bit-identically to one built before this package existed (the
determinism wall in ``tests/perf_lock`` holds).
"""

from .adaptive import AdaptiveAckErrorControl
from .breaker import BreakerState, CircuitBreaker
from .detector import ClusterResilience, HeartbeatDetector, PeerState
from .failover import FailoverTransport

__all__ = [
    "AdaptiveAckErrorControl", "BreakerState", "CircuitBreaker",
    "ClusterResilience", "FailoverTransport", "HeartbeatDetector",
    "PeerState",
]
