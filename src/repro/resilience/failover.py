"""HSM→NSM graceful degradation: the ``hsm-failover`` transport.

Wraps the paper's two service tiers behind one transport: an
:class:`~repro.core.mps.transports.AtmTransport` (HSM, raw ATM API)
protected by a per-peer :class:`~repro.resilience.breaker.CircuitBreaker`,
with an :class:`~repro.core.mps.transports.SocketTransport` (NSM,
TCP/IP) as the fallback path.  Delivery feedback from error control
drives the breakers:

* :meth:`on_path_suspect` — EC is about to retransmit, so the last
  transmission is presumed lost on whatever path carried it; an HSM
  loss is a breaker failure;
* :meth:`on_delivery_confirmed` — the receiver acked; an HSM success
  feeds the half-open probe count.

While a peer's breaker is OPEN every message to it (data, barrier
control, heartbeats) detours over NSM, so a downed ATM link degrades
throughput instead of killing the peer — and because heartbeats keep
flowing, the failure detector correctly keeps the peer ALIVE.  Probes
recover the fast path automatically once the link heals.

This transport needs a topology where the two tiers use *different*
physical paths (``atm-dual``: NSM over the Ethernet LAN, HSM over the
ATM fabric).  On ``atm-lan`` — where classical-IP and HSM PVCs share
the same TAXI links — failover is honest but futile: both tiers die
together.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core.mps.core import RELIABLE_KINDS
from ..core.mps.message import NcsMessage
from ..core.mps.transports import AtmTransport, NcsTransport, SocketTransport
from ..net.topology import Cluster
from ..registry import TRANSPORTS
from ..sim import Event
from .breaker import BreakerState, CircuitBreaker

__all__ = ["FailoverTransport", "HSM_PATH", "NSM_PATH"]

HSM_PATH = "hsm"
NSM_PATH = "nsm"

#: bound on the uid -> path maps; entries normally pop on ack/retransmit,
#: the cap only matters when error control is "none" (no feedback)
PATH_MEMORY = 4096


class FailoverTransport(NcsTransport):
    """HSM with per-peer circuit breakers failing over to NSM."""

    name = "failover"

    def __init__(self, cluster: Cluster, pid: int,
                 failure_threshold: int = 3, reset_timeout_s: float = 0.2,
                 probe_successes: int = 2):
        super().__init__(cluster, pid)
        self.primary = AtmTransport(cluster, pid)
        self.fallback = SocketTransport(cluster, pid)
        self.breakers: Dict[int, CircuitBreaker] = {}
        for peer in range(cluster.n_hosts):
            if peer != pid:
                self.breakers[peer] = CircuitBreaker(
                    self.sim, failure_threshold, reset_timeout_s,
                    probe_successes,
                    on_transition=self._make_transition_cb(peer))
        #: sender side: msg_uid -> path the last transmission used
        self._tx_path: Dict[tuple, str] = {}
        #: receiver side: msg_uid -> path that delivered the message
        self._rx_path: Dict[tuple, str] = {}
        #: statistics
        self.failovers = 0           # messages routed over NSM
        self.trips = 0               # breakers tripping CLOSED/HALF_OPEN→OPEN
        self.recoveries = 0          # breakers closing again
        _m = self.sim.metrics
        self._m_failovers = _m.counter(
            "resilience.failovers",
            help="messages detoured to NSM by an open breaker", pid=pid)
        self._m_trips = _m.counter(
            "resilience.breaker_trips", help="HSM path breakers tripped",
            pid=pid)
        self._m_recoveries = _m.counter(
            "resilience.breaker_recoveries",
            help="HSM path breakers closed after successful probes", pid=pid)

    def _make_transition_cb(self, peer: int) -> Callable:
        def cb(old: BreakerState, new: BreakerState) -> None:
            self.host.tracer.point(
                f"failover:{self.pid}", "breaker",
                (peer, old.value, new.value))
            if new is BreakerState.OPEN:
                self.trips += 1
                self._m_trips.inc()
            elif new is BreakerState.CLOSED:
                self.recoveries += 1
                self._m_recoveries.inc()
        return cb

    # ------------------------------------------------------------- delivery
    def set_delivery_handler(self, fn: Callable[[NcsMessage], None]) -> None:
        self._deliver = fn
        self.primary.set_delivery_handler(
            lambda msg: self._on_sub_delivery(HSM_PATH, msg))
        self.fallback.set_delivery_handler(
            lambda msg: self._on_sub_delivery(NSM_PATH, msg))

    def _on_sub_delivery(self, path: str, msg: NcsMessage) -> None:
        self._remember(self._rx_path, tuple(msg.msg_uid), path)
        if self._deliver is not None:
            self._deliver(msg)

    @staticmethod
    def _remember(table: Dict[tuple, str], uid: tuple, path: str) -> None:
        table[uid] = path
        while len(table) > PATH_MEMORY:
            del table[next(iter(table))]

    # -------------------------------------------------------------- sending
    def start_send(self, msg: NcsMessage) -> Event:
        breaker = self.breakers[msg.to_process]
        if breaker.allow():
            path, transport = HSM_PATH, self.primary
        else:
            path, transport = NSM_PATH, self.fallback
            self.failovers += 1
            self._m_failovers.inc()
        if msg.kind in RELIABLE_KINDS:
            # only EC-tracked kinds ever report back; remembering a
            # heartbeat's path would just age out of the table
            self._remember(self._tx_path, tuple(msg.msg_uid), path)
        return transport.start_send(msg)

    # --------------------------------------------------- EC delivery feedback
    def on_path_suspect(self, msg: NcsMessage) -> None:
        path = self._tx_path.pop(tuple(msg.msg_uid), None)
        if path == HSM_PATH:
            # NSM rides TCP (self-healing below NCS); only HSM losses
            # are evidence against the fast path
            self.breakers[msg.to_process].record_failure()

    def on_delivery_confirmed(self, msg: NcsMessage) -> None:
        path = self._tx_path.pop(tuple(msg.msg_uid), None)
        if path == HSM_PATH:
            self.breakers[msg.to_process].record_success()

    # ------------------------------------------------------------- receiving
    def recv_cost(self, nbytes: int) -> float:
        return self.primary.recv_cost(nbytes)

    def recv_cost_for(self, msg: NcsMessage) -> float:
        path = self._rx_path.pop(tuple(msg.msg_uid), HSM_PATH)
        sub = self.primary if path == HSM_PATH else self.fallback
        return sub.recv_cost(msg.size)

    # the wrapper owns no wire of its own: per-path counters live on the
    # sub-transports, so transport.* metric totals are not double-counted
    @property
    def messages_routed(self) -> int:
        return self.primary.messages_sent + self.fallback.messages_sent


@TRANSPORTS.register(
    "hsm-failover",
    help="HSM behind per-peer circuit breakers, degrading to NSM/TCP")
def _build_failover_transport(runtime, pid: int) -> FailoverTransport:
    res = getattr(runtime, "resilience", None)
    kwargs = {}
    if res is not None:
        kwargs = dict(failure_threshold=res.failure_threshold,
                      reset_timeout_s=res.reset_timeout_s,
                      probe_successes=res.probe_successes)
    return FailoverTransport(runtime.cluster, pid, **kwargs)
