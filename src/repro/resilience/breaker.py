"""Per-peer circuit breaker over the HSM/ATM path.

The degradation ladder of the self-healing NCS: HSM send failures
(CRC storms, retry exhaustion, a downed TAXI link) trip the breaker and
traffic to that peer fails over to the NSM/TCP tier; after
``reset_timeout_s`` of simulated time the breaker goes half-open and
lets probe traffic try the fast path again, closing after
``probe_successes`` consecutive confirmed deliveries.

The breaker never sees wall-clock time — all timing is simulated-time
(``sim.now``), so breaker trajectories are bit-identical across
same-seed runs and safe under the determinism wall.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(enum.Enum):
    #: healthy: traffic uses the protected (HSM) path
    CLOSED = "closed"
    #: tripped: traffic detours to the fallback (NSM) path
    OPEN = "open"
    #: probing: traffic tries the protected path again
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Classic three-state breaker driven by delivery feedback.

    * CLOSED → OPEN after ``failure_threshold`` *consecutive* failures;
    * OPEN → HALF_OPEN once ``reset_timeout_s`` of sim time has passed
      (evaluated lazily on the next :meth:`allow` call — no timers);
    * HALF_OPEN → CLOSED after ``probe_successes`` consecutive
      successes, or straight back to OPEN on any failure.
    """

    def __init__(self, sim: Any, failure_threshold: int = 3,
                 reset_timeout_s: float = 0.2, probe_successes: int = 2,
                 on_transition: Optional[
                     Callable[[BreakerState, BreakerState], None]] = None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be positive")
        if probe_successes < 1:
            raise ValueError("probe_successes must be >= 1")
        self.sim = sim
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.probe_successes = probe_successes
        self.on_transition = on_transition
        self.state = BreakerState.CLOSED
        self._failures = 0
        self._successes = 0
        self._open_until = 0.0
        #: lifetime statistics
        self.trips = 0
        self.recoveries = 0

    def _move(self, new: BreakerState) -> None:
        old, self.state = self.state, new
        if self.on_transition is not None:
            self.on_transition(old, new)

    def allow(self) -> bool:
        """May the next message use the protected path?"""
        if self.state is BreakerState.OPEN:
            if self.sim.now >= self._open_until:
                self._successes = 0
                self._move(BreakerState.HALF_OPEN)
            else:
                return False
        return True

    def record_failure(self) -> None:
        """A message on the protected path is presumed lost."""
        self._successes = 0
        if self.state is BreakerState.HALF_OPEN:
            self._trip()
        elif self.state is BreakerState.CLOSED:
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._trip()
        # OPEN: stragglers from before the trip carry no new information

    def record_success(self) -> None:
        """A message on the protected path was acknowledged."""
        if self.state is BreakerState.HALF_OPEN:
            self._successes += 1
            if self._successes >= self.probe_successes:
                self._failures = 0
                self.recoveries += 1
                self._move(BreakerState.CLOSED)
        elif self.state is BreakerState.CLOSED:
            self._failures = 0

    def _trip(self) -> None:
        self._failures = 0
        self._open_until = self.sim.now + self.reset_timeout_s
        self.trips += 1
        self._move(BreakerState.OPEN)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<CircuitBreaker {self.state.value} "
                f"failures={self._failures} trips={self.trips}>")
