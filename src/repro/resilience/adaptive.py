"""Adaptive error control: Jacobson RTT estimation for the EC thread.

The fixed ``timeout_s`` of :class:`AckRetransmitErrorControl` is a
landmine on a WAN path: too short and every ACK that takes the scenic
route triggers a spurious retransmission, too long and a genuinely lost
PDU stalls the pipeline.  This subclass replaces it with the TCP
estimator (Jacobson 1988, RFC 6298):

    SRTT   <- (1-alpha)*SRTT + alpha*sample
    RTTVAR <- (1-beta)*RTTVAR + beta*|SRTT - sample|
    RTO    <- clamp(SRTT + 4*RTTVAR, min_rto_s, max_rto_s)

sampled from send→ACK round trips, with Karn's rule: a message that was
ever retransmitted contributes no sample (its ACK is ambiguous).

Two give-up policies stack on top of the base class's retry count:

* ``retry_budget_s`` — a per-message wall: total time spent
  retransmitting one message may not exceed this budget;
* message deadlines (``NCS_send(..., deadline=t)``) — handled by the
  base class; retransmission stops once the data is stale.
"""

from __future__ import annotations

from typing import Optional

from ..registry import ERROR_CONTROLS
from ..core.mps.error_control import AckRetransmitErrorControl

__all__ = ["AdaptiveAckErrorControl"]


@ERROR_CONTROLS.register("adaptive")
class AdaptiveAckErrorControl(AckRetransmitErrorControl):
    """Positive-ack retransmission with an adaptive (SRTT/RTTVAR) RTO."""

    name = "adaptive"

    def __init__(self, timeout_s: float = 0.05, max_retries: int = 8,
                 check_interval_s: float = 0.01,
                 dedup_capacity: int = 65536,
                 min_rto_s: float = 0.005, max_rto_s: float = 2.0,
                 alpha: float = 0.125, beta: float = 0.25,
                 retry_budget_s: Optional[float] = None):
        super().__init__(timeout_s, max_retries, check_interval_s,
                         dedup_capacity)
        if not (0 < min_rto_s <= max_rto_s):
            raise ValueError("need 0 < min_rto_s <= max_rto_s")
        if not (0 < alpha < 1 and 0 < beta < 1):
            raise ValueError("alpha and beta must be in (0, 1)")
        if retry_budget_s is not None and retry_budget_s <= 0:
            raise ValueError("retry_budget_s must be positive")
        self.min_rto_s = min_rto_s
        self.max_rto_s = max_rto_s
        self.alpha = alpha
        self.beta = beta
        self.retry_budget_s = retry_budget_s
        #: current retransmission timeout (timeout_s until first sample)
        self.rto = max(min(timeout_s, max_rto_s), min_rto_s)
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        #: statistics
        self.rtt_samples = 0
        self.budget_exhausted = 0

    def bind(self, mps) -> None:
        super().bind(mps)
        self._m_rto = mps.sim.metrics.gauge(
            "ec.rto", help="current adaptive retransmission timeout (s)",
            pid=mps.pid)
        self._m_rto.set(self.rto)

    def _initial_timeout(self) -> float:
        return self.rto

    # ----------------------------------------------------------- estimation
    def on_sent(self, msg) -> None:
        uid = self._uid(msg.msg_uid)
        if uid not in self._unacked:
            # 4th slot: first-transmission time, for RTT samples (Karn:
            # only entries still at 0 retries produce one) and the
            # per-message retry budget
            self._unacked[uid] = [msg, self.sim.now + self._initial_timeout(),
                                  0, self.sim.now]
            self._kick()

    def on_ack(self, msg_uid) -> None:
        entry = self._unacked.pop(self._uid(msg_uid), None)
        if entry is None:
            return
        if entry[2] == 0:
            self._sample(self.sim.now - entry[3])
        self.mps.transport.on_delivery_confirmed(entry[0])

    def _sample(self, rtt: float) -> None:
        if rtt < 0:   # pragma: no cover - sim time is monotonic
            return
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2
        else:
            self.rttvar = ((1 - self.beta) * self.rttvar
                           + self.beta * abs(self.srtt - rtt))
            self.srtt = (1 - self.alpha) * self.srtt + self.alpha * rtt
        self.rtt_samples += 1
        self.rto = max(self.min_rto_s,
                       min(self.srtt + 4 * self.rttvar, self.max_rto_s))
        self._m_rto.set(self.rto)

    # ------------------------------------------------------------- give-up
    def _retransmit(self, uid, entry):
        if (self.retry_budget_s is not None
                and self.sim.now - entry[3] >= self.retry_budget_s):
            self.budget_exhausted += 1
            self._give_up(uid, entry[0], "budget-exhausted")
            return
        yield from super()._retransmit(uid, entry)
