"""``python -m repro.run`` — run declarative NCS scenarios and fleets.

Usage::

    python -m repro.run scenario.toml [more.toml ...]
    python -m repro.run --seed 7 scenario.toml   # override cluster.seed
    python -m repro.run --shards 4 scenario.toml # sharded parallel kernel
    python -m repro.run --list            # registered components
    python -m repro.run --print-spec s.toml   # canonical TOML, no run

    python -m repro.run --fleet scenarios/ --jobs 4          # run + table
    python -m repro.run --fleet scenarios/ --write           # (re)baseline
    python -m repro.run --fleet scenarios/ --check           # regression?
    python -m repro.run --fleet scenarios/matrix/small_sweep.toml

A scenario file is a TOML (or JSON) document describing one experiment
end to end — cluster topology, NCS service mode, flow/error control,
fault plan, application and telemetry — that loads into a
:class:`repro.config.ScenarioSpec` and runs through
:func:`repro.config.run_scenario`.  Checked-in examples live in the
repository's ``scenarios/`` directory.

``--fleet`` runs a whole directory of scenarios (or a parameter-matrix
TOML, see :mod:`repro.config.fleet`) across a process pool, reduces
every run to a KPI row (:mod:`repro.fleet`), and — with ``--check`` —
diffs the fresh KPIs against the checked-in ``KPIS_<fleet>.json``
baseline, exiting nonzero on regression.

Every component name in a scenario resolves through
:mod:`repro.registry`; ``--list`` shows what is available, including
anything registered by modules imported via ``--import``.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys

from .config import (SpecError, SupervisionSpec, dump_scenario, dumps_toml,
                     load_fleet, load_scenario, run_scenario,
                     ensure_components)
from .diagnostics import RESILIENCE_COUNTERS, render_report
from .registry import UnknownNameError, all_registries

__all__ = ["main"]


def _list_components() -> str:
    ensure_components()
    lines = []
    for reg_name, reg in all_registries().items():
        lines.append(f"{reg_name}:")
        for name in reg.names():
            help_text = reg.help_for(name)
            lines.append(f"  {name:<20} {help_text}" if help_text
                         else f"  {name}")
    return "\n".join(lines)


def _summarize(result) -> str:
    spec = result.spec
    head = f"scenario {spec.name!r} [{spec.digest()}]: done"
    rows = [f"  {k:<16} {v}" for k, v in result.summary().items()]
    if spec.resilience is not None and result.cluster is not None:
        # every counter, zeros included — the schema must not depend on
        # whether anything actually failed over this run
        metrics = result.cluster.metrics
        for name in RESILIENCE_COUNTERS:
            rows.append(f"  {name:<32} {metrics.total(name):g}")
    # a sharded run that recovered from a worker failure says so
    if result.cluster is not None:
        from .obs import RECOVERY_COUNTERS
        metrics = result.cluster.metrics
        snap = metrics.snapshot() if hasattr(metrics, "snapshot") else {}
        for name in RECOVERY_COUNTERS:
            for label, count in sorted(snap.get(name, {}).items()):
                tag = f"{name}{{{label}}}" if label else name
                rows.append(f"  {tag:<48} {count:g}")
    rows += [f"  exported         {p}" for p in result.exported]
    return "\n".join([head] + rows)


def _run_fleet_cli(args) -> int:
    from .fleet import (diff_kpis, load_kpi_doc, render_table, run_fleet,
                        write_kpi_doc)
    try:
        fleet = load_fleet(args.fleet)
    except (SpecError, OSError) as e:
        print(f"{args.fleet}: {e}", file=sys.stderr)
        return 2
    kpis_file = args.kpis_file or f"KPIS_{fleet.name}.json"

    def progress(outcome):
        if outcome.ok:
            print(f"  {outcome.run_id}: ok")
        else:
            print(f"  {outcome.run_id}: FAILED — {outcome.error}")

    print(f"fleet {fleet.name!r}: {len(fleet.runs)} run(s), "
          f"jobs={args.jobs}")
    result = run_fleet(fleet, jobs=args.jobs, results_dir=args.results,
                       progress=progress, timeout_s=args.timeout,
                       retries=args.retries, backoff_s=args.backoff)
    doc = result.kpi_doc()
    print(render_table(result.rows()))
    write_kpi_doc(doc, f"{args.results}/KPIS_{fleet.name}.json")

    if args.write:
        write_kpi_doc(doc, kpis_file)
        print(f"baseline written: {kpis_file}")
        return 0 if result.ok else 1
    if args.check:
        try:
            baseline = load_kpi_doc(kpis_file)
        except OSError as e:
            print(f"no baseline to check against ({e}); run with --write "
                  "to create one", file=sys.stderr)
            return 2
        failures = diff_kpis(baseline, doc)
        if failures:
            print(f"KPI regression vs {kpis_file}:", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            return 1
        print(f"KPIs within tolerance of {kpis_file}")
        return 0
    return 0 if result.ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.run",
        description="Run declarative NCS scenario files and fleets.")
    parser.add_argument("scenarios", nargs="*", metavar="SCENARIO",
                        help="scenario file(s): .toml or .json")
    parser.add_argument("--list", action="store_true",
                        help="list registered components and exit")
    parser.add_argument("--print-spec", action="store_true",
                        help="print each scenario's canonical TOML "
                             "(validated, defaults pruned) without running")
    parser.add_argument("--report", action="store_true",
                        help="print the cluster diagnostics report after "
                             "each run (implied by obs.report = true)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override cluster.seed (stamps the spec digest: "
                             "a reseeded run is a different experiment)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="override runtime.shards: N > 1 partitions the "
                             "simulation across worker kernels (selects the "
                             "'sharded' kernel; results are bit-identical "
                             "to the single kernel)")
    parser.add_argument("--barrier-deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="override runtime.supervision."
                             "barrier_deadline_s: the wall-clock budget "
                             "for each sharded-kernel window barrier")
    parser.add_argument("--recovery-policy", default=None,
                        choices=SupervisionSpec.POLICIES,
                        help="override runtime.supervision.policy: how the "
                             "sharded kernel recovers from a worker "
                             "crash/hang (default: retry-then-fallback)")
    parser.add_argument("--import", dest="imports", action="append",
                        default=[], metavar="MODULE",
                        help="import MODULE first so third-party components "
                             "self-register (repeatable)")
    fleet_group = parser.add_argument_group("fleet mode")
    fleet_group.add_argument("--fleet", metavar="DIR|MATRIX.toml",
                             help="run a scenario directory or a parameter-"
                                  "matrix file as one fleet")
    fleet_group.add_argument("--jobs", type=int, default=1, metavar="N",
                             help="process-pool width (default: 1, inline)")
    fleet_group.add_argument("--results", default="fleet_results",
                             metavar="DIR",
                             help="per-run artifact directory "
                                  "(default: fleet_results)")
    fleet_group.add_argument("--kpis-file", default=None, metavar="PATH",
                             help="KPI baseline path (default: "
                                  "KPIS_<fleet>.json)")
    fleet_group.add_argument("--check", action="store_true",
                             help="diff fresh KPIs against the baseline; "
                                  "exit 1 on regression")
    fleet_group.add_argument("--write", action="store_true",
                             help="write/refresh the KPI baseline")
    fleet_group.add_argument("--timeout", type=float, default=None,
                             metavar="SECONDS",
                             help="per-run wall-clock timeout; a run that "
                                  "exceeds it fails (and may be retried) "
                                  "instead of stalling the fleet")
    fleet_group.add_argument("--retries", type=int, default=0, metavar="N",
                             help="relaunch a failed run up to N times "
                                  "with exponential backoff (attempt "
                                  "counts land in metrics.json and the "
                                  "KPI row)")
    fleet_group.add_argument("--backoff", type=float, default=0.5,
                             metavar="SECONDS",
                             help="base backoff between retry attempts "
                                  "(doubles per attempt; default: 0.5)")
    args = parser.parse_args(argv)

    if args.shards is not None and args.shards < 1:
        from .registry import KERNELS
        ensure_components()
        parser.error(
            f"--shards must be a positive shard count, got {args.shards}; "
            f"use 1 for the single kernel or N > 1 for the sharded kernel "
            f"(registered kernels: {', '.join(KERNELS.names())})")

    for mod in args.imports:
        importlib.import_module(mod)

    if args.list:
        print(_list_components())
        return 0
    if args.fleet:
        if args.scenarios:
            parser.error("--fleet and positional scenario files are "
                         "mutually exclusive")
        if args.seed is not None:
            parser.error("--seed applies to single scenarios; parameterize "
                         "a fleet via a matrix axis on cluster.seed instead")
        if args.shards is not None:
            parser.error("--shards applies to single scenarios; "
                         "parameterize a fleet via a matrix axis on "
                         "runtime.shards instead")
        if args.barrier_deadline is not None or args.recovery_policy:
            parser.error("--barrier-deadline/--recovery-policy apply to "
                         "single scenarios; set [runtime.supervision] in "
                         "the scenario files of a fleet instead")
        if args.check and args.write:
            parser.error("--check and --write are mutually exclusive "
                         "(check first, then write if the change is real)")
        if args.jobs < 1:
            parser.error("--jobs must be >= 1")
        return _run_fleet_cli(args)
    if args.check or args.write:
        parser.error("--check/--write require --fleet")
    if args.timeout is not None or args.retries or args.backoff != 0.5:
        parser.error("--timeout/--retries/--backoff require --fleet")
    if not args.scenarios:
        parser.error("no scenario files given (or use --list / --fleet)")

    status = 0
    for path in args.scenarios:
        try:
            spec = load_scenario(path)
        except (SpecError, OSError) as e:
            print(f"{path}: {e}", file=sys.stderr)
            status = 2
            continue
        if args.seed is not None:
            spec = spec.with_cluster(seed=args.seed)
        if args.shards is not None:
            spec = spec.replace(shards=args.shards)
        if args.barrier_deadline is not None or args.recovery_policy:
            import dataclasses
            overrides = {}
            if args.barrier_deadline is not None:
                overrides["barrier_deadline_s"] = args.barrier_deadline
            if args.recovery_policy:
                overrides["policy"] = args.recovery_policy
            try:
                spec = spec.replace(supervision=dataclasses.replace(
                    spec.supervision, **overrides))
            except SpecError as e:
                print(f"{path}: {e}", file=sys.stderr)
                status = 2
                continue
        if args.print_spec:
            print(dumps_toml(spec.to_dict()), end="")
            continue
        try:
            result = run_scenario(spec)
        except (SpecError, UnknownNameError) as e:
            print(f"{path}: {e}", file=sys.stderr)
            status = 2
            continue
        print(_summarize(result))
        if (args.report or spec.obs.report) and result.cluster is not None:
            print(render_report(result.report(), indent=1))
    return status


if __name__ == "__main__":
    sys.exit(main())
