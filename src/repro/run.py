"""``python -m repro.run`` — run declarative NCS scenarios.

Usage::

    python -m repro.run scenario.toml [more.toml ...]
    python -m repro.run --list            # registered components
    python -m repro.run --print-spec s.toml   # canonical TOML, no run

A scenario file is a TOML (or JSON) document describing one experiment
end to end — cluster topology, NCS service mode, flow/error control,
fault plan, application and telemetry — that loads into a
:class:`repro.config.ScenarioSpec` and runs through
:func:`repro.config.run_scenario`.  Checked-in examples live in the
repository's ``scenarios/`` directory.

Every component name in a scenario resolves through
:mod:`repro.registry`; ``--list`` shows what is available, including
anything registered by modules imported via ``--import``.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys

from .config import (SpecError, dump_scenario, dumps_toml, load_scenario,
                     run_scenario, ensure_components)
from .diagnostics import render_report
from .registry import UnknownNameError, all_registries

__all__ = ["main"]


def _list_components() -> str:
    ensure_components()
    lines = []
    for reg_name, reg in all_registries().items():
        lines.append(f"{reg_name}:")
        for name in reg.names():
            help_text = reg.help_for(name)
            lines.append(f"  {name:<20} {help_text}" if help_text
                         else f"  {name}")
    return "\n".join(lines)


#: cluster-wide resilience counters surfaced after a [resilience] run
_RESILIENCE_METRICS = (
    "resilience.failovers", "resilience.breaker_trips",
    "resilience.breaker_recoveries", "resilience.deaths",
    "resilience.rejoins", "resilience.reassigned_units",
)


def _summarize(result) -> str:
    spec = result.spec
    head = f"scenario {spec.name!r} [{spec.digest()}]: done"
    rows = [f"  {k:<16} {v}" for k, v in result.summary().items()]
    if spec.resilience is not None and result.cluster is not None:
        metrics = result.cluster.metrics
        for name in _RESILIENCE_METRICS:
            total = metrics.total(name)
            if total:
                rows.append(f"  {name:<32} {total:g}")
    rows += [f"  exported         {p}" for p in result.exported]
    return "\n".join([head] + rows)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.run",
        description="Run declarative NCS scenario files.")
    parser.add_argument("scenarios", nargs="*", metavar="SCENARIO",
                        help="scenario file(s): .toml or .json")
    parser.add_argument("--list", action="store_true",
                        help="list registered components and exit")
    parser.add_argument("--print-spec", action="store_true",
                        help="print each scenario's canonical TOML "
                             "(validated, defaults pruned) without running")
    parser.add_argument("--report", action="store_true",
                        help="print the cluster diagnostics report after "
                             "each run (implied by obs.report = true)")
    parser.add_argument("--import", dest="imports", action="append",
                        default=[], metavar="MODULE",
                        help="import MODULE first so third-party components "
                             "self-register (repeatable)")
    args = parser.parse_args(argv)

    for mod in args.imports:
        importlib.import_module(mod)

    if args.list:
        print(_list_components())
        return 0
    if not args.scenarios:
        parser.error("no scenario files given (or use --list)")

    status = 0
    for path in args.scenarios:
        try:
            spec = load_scenario(path)
        except (SpecError, OSError) as e:
            print(f"{path}: {e}", file=sys.stderr)
            status = 2
            continue
        if args.print_spec:
            print(dumps_toml(spec.to_dict()), end="")
            continue
        try:
            result = run_scenario(spec)
        except (SpecError, UnknownNameError) as e:
            print(f"{path}: {e}", file=sys.stderr)
            status = 2
            continue
        print(_summarize(result))
        if (args.report or spec.obs.report) and result.cluster is not None:
            print(render_report(result.report(), indent=1))
    return status


if __name__ == "__main__":
    sys.exit(main())
