"""KPI extraction: one typed row per scenario run.

A :class:`~repro.obs.MetricsRegistry` snapshot is exact but wide —
hundreds of label sets across a dozen metric families.  This module
reduces it (plus the driver's summary) to the handful of numbers an
experimenter actually regresses on: makespan, goodput, loss and
retransmission rates, fault/self-healing counts, host events
(scheduler context switches — the cost NIC-offloaded collectives
exist to avoid), collective-engine counters, and delivery-latency
quantiles pulled from the ``mps.delivery_latency_s`` histogram via
:mod:`repro.obs.kpi`.

Every row always carries every field — absent layers read as zeros
(resilience counters) or ``None`` (latency quantiles when nothing was
delivered) — so KPI documents from different scenarios diff cleanly
against each other and against checked-in baselines
(:mod:`repro.fleet.diff`).  Derived floats are rounded to fixed
precision so documents are byte-stable across platforms.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional

from ..diagnostics import RESILIENCE_COUNTERS
from ..obs.kpi import counter_total, histogram_family, histogram_quantile

__all__ = ["KpiRow", "extract_kpis", "goodput", "render_table",
           "write_kpi_doc", "load_kpi_doc", "KPI_SCHEMA"]

#: bumped when row fields change shape (forces a golden regeneration)
KPI_SCHEMA = 2


@dataclass(frozen=True)
class KpiRow:
    """The per-run KPI vector. Field order is the document order."""

    scenario: str
    digest: str
    makespan_s: Optional[float]
    messages_sent: int
    messages_delivered: int
    messages_lost: int
    app_bytes: int
    goodput_bytes_s: float
    retransmissions: int
    retransmit_rate: float
    faults_injected: int
    failovers: int
    breaker_trips: int
    breaker_recoveries: int
    deaths: int
    rejoins: int
    reassigned_units: int
    host_events: int
    collective_ops: int
    collective_retransmits: int
    collective_lost: int
    p50_delivery_s: Optional[float]
    p99_delivery_s: Optional[float]

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, raw: Mapping) -> "KpiRow":
        return cls(**{f.name: raw.get(f.name)
                      for f in dataclasses.fields(cls)})


def goodput(app_bytes: float, sent: int, delivered: int,
            makespan_s: Optional[float]) -> float:
    """Delivered application bytes per simulated second.

    ``app_bytes`` is what senders put on the wire; scaling by the
    delivered fraction credits only what arrived.  Zero guards: no
    traffic or no (or zero) makespan reads as zero goodput, never a
    division error.
    """
    if not sent or not makespan_s:
        return 0.0
    return app_bytes * (delivered / sent) / makespan_s


def _round(value: Optional[float], digits: int) -> Optional[float]:
    return None if value is None else round(value, digits)


def extract_kpis(spec, snapshot: Mapping[str, Any],
                 summary: Optional[Mapping[str, Any]] = None) -> KpiRow:
    """Reduce a run (spec + metrics snapshot + driver summary) to KPIs."""
    summary = summary or {}
    sent = int(counter_total(snapshot, "mps.data_sent"))
    delivered = int(counter_total(snapshot, "mps.data_received"))
    bytes_hist = histogram_family(snapshot, "mps.message_bytes")
    app_bytes = int(bytes_hist["sum"]) if bytes_hist else 0
    retrans = int(counter_total(snapshot, "ec.retransmissions")
                  + counter_total(snapshot, "tcp.retransmissions"))
    makespan = summary.get("makespan_s")
    if not isinstance(makespan, (int, float)) or isinstance(makespan, bool):
        makespan = None
    latency = histogram_family(snapshot, "mps.delivery_latency_s")
    resilience = {name.split(".", 1)[1]: int(counter_total(snapshot, name))
                  for name in RESILIENCE_COUNTERS}
    return KpiRow(
        scenario=spec.name,
        digest=spec.digest(),
        makespan_s=_round(makespan, 9),
        messages_sent=sent,
        messages_delivered=delivered,
        messages_lost=int(counter_total(snapshot, "mps.messages_lost")),
        app_bytes=app_bytes,
        goodput_bytes_s=round(goodput(app_bytes, sent, delivered,
                                      makespan), 3),
        retransmissions=retrans,
        retransmit_rate=round(retrans / sent, 6) if sent else 0.0,
        faults_injected=int(counter_total(snapshot, "faults.events_begun")),
        host_events=int(counter_total(snapshot, "mts.context_switches")),
        collective_ops=int(counter_total(snapshot, "collective.ops")),
        collective_retransmits=int(
            counter_total(snapshot, "collective.retransmissions")),
        collective_lost=int(counter_total(snapshot, "collective.lost")),
        p50_delivery_s=_round(histogram_quantile(latency, 0.50), 9),
        p99_delivery_s=_round(histogram_quantile(latency, 0.99), 9),
        **resilience,
    )


# ---------------------------------------------------------------- documents

def kpi_doc(fleet_name: str, rows: Mapping[str, Any]) -> dict:
    """The persistable KPI document. ``rows`` values are KpiRow, plain
    row dicts, or ``{"error": ...}`` markers for failed runs."""
    out = {}
    for run_id, row in rows.items():
        out[run_id] = row.to_dict() if isinstance(row, KpiRow) else dict(row)
    return {"schema": KPI_SCHEMA, "fleet": fleet_name, "rows": out}


def write_kpi_doc(doc: Mapping, path: str | Path) -> Path:
    """Byte-stable on purpose: sorted keys, fixed indent, no timestamps —
    same fleet, same seeds -> byte-identical file (the determinism tests
    assert exactly that)."""
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_kpi_doc(path: str | Path) -> dict:
    with open(path) as fh:
        return json.load(fh)


# ------------------------------------------------------------------- table

_TABLE_COLUMNS = (
    # (header, row-dict key, format)
    ("run", None, "s"),
    ("makespan_s", "makespan_s", ".6f"),
    ("goodput_B/s", "goodput_bytes_s", ".0f"),
    ("sent", "messages_sent", "d"),
    ("dlvd", "messages_delivered", "d"),
    ("lost", "messages_lost", "d"),
    ("retx", "retransmissions", "d"),
    ("faults", "faults_injected", "d"),
    ("failover", "failovers", "d"),
    ("reassign", "reassigned_units", "d"),
    ("hostev", "host_events", "d"),
    ("coll", "collective_ops", "d"),
    ("p50_ms", "p50_delivery_s", "ms"),
    ("p99_ms", "p99_delivery_s", "ms"),
)


def _cell(row: Mapping, key: Optional[str], fmt: str) -> str:
    value = row.get(key) if key else None
    if value is None:
        return "-"
    if fmt == "ms":
        return f"{value * 1e3:.3f}"
    return format(value, fmt)


def render_table(rows: Mapping[str, Any]) -> str:
    """An aligned text table of every run's KPIs (errors flagged inline)."""
    table: list[list[str]] = [[h for h, _, _ in _TABLE_COLUMNS]]
    for run_id, row in rows.items():
        if isinstance(row, KpiRow):
            row = row.to_dict()
        if "error" in row:
            table.append([run_id, f"ERROR: {row['error']}"]
                         + [""] * (len(_TABLE_COLUMNS) - 2))
            continue
        table.append([run_id] + [_cell(row, key, fmt)
                                 for _, key, fmt in _TABLE_COLUMNS[1:]])
    widths = [max(len(r[i]) for r in table)
              for i in range(len(_TABLE_COLUMNS))]
    lines = []
    for i, row in enumerate(table):
        lines.append("  ".join(
            cell.ljust(w) if j == 0 else cell.rjust(w)
            for j, (cell, w) in enumerate(zip(row, widths))).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
