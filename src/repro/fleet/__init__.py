"""Fleet execution and KPI regression: many scenarios, one verdict.

The layer that turns the checked-in ``scenarios/`` corpus (or a
parameter-matrix sweep) into a regression instrument::

    python -m repro.run --fleet scenarios/ --jobs 4 --check

:mod:`~repro.fleet.runner` executes a :class:`~repro.config.FleetSpec`
across a process pool with per-run isolation and deterministic
ordering; :mod:`~repro.fleet.kpis` reduces each run's metrics snapshot
to a typed KPI row and renders/persists the resulting document;
:mod:`~repro.fleet.diff` compares a fresh fleet against a checked-in
``KPIS_<fleet>.json`` baseline with per-KPI tolerance windows.  The
wall-clock ``BENCH_*.json`` files guard *implementation speed*; the
KPI goldens guard *simulated behavior* — together they pin both axes
of "did this change break anything".
"""

from .kpis import (KPI_SCHEMA, KpiRow, extract_kpis, goodput, kpi_doc,
                   load_kpi_doc, render_table, write_kpi_doc)
from .diff import DEFAULT_TOLERANCES, diff_kpis, diff_rows
from .runner import FleetResult, RunOutcome, run_fleet

__all__ = [
    "KPI_SCHEMA", "KpiRow", "extract_kpis", "goodput", "kpi_doc",
    "load_kpi_doc", "render_table", "write_kpi_doc",
    "DEFAULT_TOLERANCES", "diff_kpis", "diff_rows",
    "FleetResult", "RunOutcome", "run_fleet",
]
