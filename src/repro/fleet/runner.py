"""Execute a fleet of scenarios across a process pool.

Each run is a pure function of its spec document: the worker rebuilds
the :class:`~repro.config.ScenarioSpec` from canonical JSON, runs it
through :func:`repro.config.run_scenario` (fresh cluster, fresh
metrics registry — process isolation makes cross-run leakage
structurally impossible), reduces the metrics snapshot to a
:class:`~repro.fleet.kpis.KpiRow`, and persists per-run artifacts.
Because workers share nothing and results are collected in submission
order, ``jobs=1`` and ``jobs=N`` produce byte-identical KPI documents
— the determinism tests hold the runner to exactly that.

A failing run (driver exception, spec/build error) never takes the
fleet down: its row becomes an ``{"error": ...}`` marker that renders
in the table, fails a ``--check``, and leaves every other run's KPIs
intact.  Two supervision knobs harden long fleets further: a per-run
wall-clock ``timeout_s`` (enforced inside the worker with a SIGALRM
deadline, so a wedged scenario cannot stall its pool slot forever) and
bounded ``retries`` with exponential backoff for transient failures.
The attempt count lands in every retried run's ``metrics.json``
(``fleet.attempts``) and KPI row (``attempts``, only when > 1 so
single-attempt fleets keep their byte-identical documents).
"""

from __future__ import annotations

import json
import signal
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from ..config.fleet import FleetSpec
from .kpis import kpi_doc

__all__ = ["RunOutcome", "FleetResult", "RunTimeout", "run_fleet"]


class RunTimeout(Exception):
    """One scenario attempt exceeded the fleet's per-run deadline."""


@dataclass(frozen=True)
class RunOutcome:
    """One scenario's result: a KPI row or an error marker."""

    run_id: str
    ok: bool
    row: Optional[dict] = None          # KpiRow.to_dict() when ok
    error: Optional[str] = None
    artifacts: tuple = ()
    attempts: int = 1                   # launches it took (1 = no retry)

    def doc_row(self) -> dict:
        row = dict(self.row) if self.ok else {"error": self.error}
        if self.attempts > 1:
            row["attempts"] = self.attempts
        return row


@dataclass
class FleetResult:
    """Every outcome, in the fleet's deterministic run order."""

    fleet: str
    outcomes: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def rows(self) -> dict:
        return {o.run_id: o.doc_row() for o in self.outcomes}

    def kpi_doc(self) -> dict:
        return kpi_doc(self.fleet, self.rows())

    def errors(self) -> list:
        return [(o.run_id, o.error) for o in self.outcomes if not o.ok]


def _run_dir_name(run_id: str) -> str:
    """Run ids become directory names; '/' is the only unsafe char."""
    return run_id.replace("/", "_")


class _deadline:
    """A SIGALRM-backed wall-clock deadline around one run attempt.

    Arms only where it can: SIGALRM exists (POSIX) and we are on the
    process's main thread (signal handlers cannot be installed
    elsewhere) — both hold for pool workers and the ``jobs=1`` inline
    path.  Anywhere else the deadline degrades to a no-op rather than
    failing the run.
    """

    def __init__(self, timeout_s: Optional[float]):
        self.timeout_s = timeout_s
        self.armed = False

    def __enter__(self):
        if (self.timeout_s is not None and hasattr(signal, "setitimer")
                and threading.current_thread() is threading.main_thread()):
            def _expire(signum, frame):
                raise RunTimeout(
                    f"run exceeded the {self.timeout_s:g}s per-run "
                    "wall-clock timeout")
            self._prev = signal.signal(signal.SIGALRM, _expire)
            signal.setitimer(signal.ITIMER_REAL, self.timeout_s)
            self.armed = True
        return self

    def __exit__(self, *exc):
        if self.armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._prev)
        return False


def _attempt_one(run_id: str, doc_json: str, artifacts_dir: Optional[str],
                 timeout_s: Optional[float], attempts: int) -> dict:
    """One attempt at one scenario; raises on failure (caller retries)."""
    from ..config import ScenarioSpec, ensure_components, run_scenario
    from .kpis import extract_kpis
    ensure_components()
    spec = ScenarioSpec.from_dict(json.loads(doc_json))
    with _deadline(timeout_s):
        result = run_scenario(spec)
    snapshot = (result.cluster.metrics.snapshot()
                if result.cluster is not None else {})
    row = extract_kpis(spec, snapshot, result.summary())
    artifacts = list(result.exported)
    if artifacts_dir is not None:
        run_dir = Path(artifacts_dir) / _run_dir_name(run_id)
        run_dir.mkdir(parents=True, exist_ok=True)
        if attempts > 1:
            # the attempt count is runner telemetry, not simulated
            # behaviour: single-attempt runs omit it so their
            # metrics.json stays byte-identical
            snapshot = dict(snapshot)
            snapshot["fleet.attempts"] = {"": attempts}
        metrics_path = run_dir / "metrics.json"
        metrics_path.write_text(
            json.dumps(snapshot, indent=1, sort_keys=True) + "\n")
        artifacts.append(str(metrics_path))
        if spec.obs.trace and result.cluster is not None:
            from ..obs import export_chrome_trace
            trace_path = run_dir / "trace.json"
            export_chrome_trace(result.cluster.tracer, trace_path,
                                metrics=result.cluster.metrics)
            artifacts.append(str(trace_path))
    return {"run_id": run_id, "ok": True, "row": row.to_dict(),
            "artifacts": artifacts, "attempts": attempts}


def _execute_one(run_id: str, doc_json: str, artifacts_dir: Optional[str],
                 timeout_s: Optional[float] = None, retries: int = 0,
                 backoff_s: float = 0.5) -> dict:
    """One worker task; module-level so it pickles into pool workers.

    Returns a plain dict (not RunOutcome) to keep the pool protocol to
    stdlib types.  Never raises: any failure is folded into the result.
    Each attempt gets a fresh deadline; failed attempts back off
    exponentially (``backoff_s * 2**attempt``) before relaunching, up
    to ``retries`` relaunches.
    """
    last: dict = {}
    for attempt in range(retries + 1):
        try:
            return _attempt_one(run_id, doc_json, artifacts_dir,
                                timeout_s, attempts=attempt + 1)
        except Exception as e:                  # noqa: BLE001 — fleet runs
            # must survive any one scenario failing, whatever the cause
            last = {"run_id": run_id, "ok": False,
                    "error": f"{type(e).__name__}: {e}",
                    "trace": traceback.format_exc(),
                    "attempts": attempt + 1}
            if attempt < retries:
                time.sleep(backoff_s * (2 ** attempt))
    return last


def _to_outcome(raw: dict) -> RunOutcome:
    return RunOutcome(run_id=raw["run_id"], ok=raw["ok"],
                      row=raw.get("row"), error=raw.get("error"),
                      artifacts=tuple(raw.get("artifacts", ())),
                      attempts=raw.get("attempts", 1))


def run_fleet(fleet: FleetSpec, jobs: int = 1,
              results_dir: Optional[str | Path] = None,
              progress: Optional[Callable[[RunOutcome], Any]] = None,
              timeout_s: Optional[float] = None, retries: int = 0,
              backoff_s: float = 0.5) -> FleetResult:
    """Run every scenario in ``fleet``; outcomes keep fleet order.

    ``jobs=1`` runs inline (no pool, easiest to debug); ``jobs>1``
    fans out over a :class:`~concurrent.futures.ProcessPoolExecutor`.
    ``results_dir`` enables per-run artifacts (``<dir>/<run_id>/
    metrics.json`` plus ``trace.json`` for tracing scenarios).
    ``progress`` is called with each :class:`RunOutcome` as it lands,
    in fleet order.  ``timeout_s`` bounds each run attempt's wall
    clock; ``retries`` relaunches a failed run up to that many times
    with exponential ``backoff_s`` between attempts.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1 (got {jobs})")
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError(f"timeout_s must be positive (got {timeout_s})")
    if retries < 0:
        raise ValueError(f"retries must be >= 0 (got {retries})")
    if backoff_s < 0:
        raise ValueError(f"backoff_s must be >= 0 (got {backoff_s})")
    if results_dir is not None:
        results_dir = str(Path(results_dir))
        Path(results_dir).mkdir(parents=True, exist_ok=True)
    tasks = [(run_id, spec.canonical_json(), results_dir,
              timeout_s, retries, backoff_s)
             for run_id, spec in fleet.runs]
    result = FleetResult(fleet=fleet.name)
    if jobs == 1 or len(tasks) == 1:
        raws = (_execute_one(*task) for task in tasks)
    else:
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(tasks)))
        with pool:
            futures = [pool.submit(_execute_one, *task) for task in tasks]
            raws = (f.result() for f in futures)
            raws = list(raws)   # drain inside the pool context
    for raw in raws:
        outcome = _to_outcome(raw)
        result.outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
    return result
