"""Execute a fleet of scenarios across a process pool.

Each run is a pure function of its spec document: the worker rebuilds
the :class:`~repro.config.ScenarioSpec` from canonical JSON, runs it
through :func:`repro.config.run_scenario` (fresh cluster, fresh
metrics registry — process isolation makes cross-run leakage
structurally impossible), reduces the metrics snapshot to a
:class:`~repro.fleet.kpis.KpiRow`, and persists per-run artifacts.
Because workers share nothing and results are collected in submission
order, ``jobs=1`` and ``jobs=N`` produce byte-identical KPI documents
— the determinism tests hold the runner to exactly that.

A failing run (driver exception, spec/build error) never takes the
fleet down: its row becomes an ``{"error": ...}`` marker that renders
in the table, fails a ``--check``, and leaves every other run's KPIs
intact.
"""

from __future__ import annotations

import json
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from ..config.fleet import FleetSpec
from .kpis import kpi_doc

__all__ = ["RunOutcome", "FleetResult", "run_fleet"]


@dataclass(frozen=True)
class RunOutcome:
    """One scenario's result: a KPI row or an error marker."""

    run_id: str
    ok: bool
    row: Optional[dict] = None          # KpiRow.to_dict() when ok
    error: Optional[str] = None
    artifacts: tuple = ()

    def doc_row(self) -> dict:
        return dict(self.row) if self.ok else {"error": self.error}


@dataclass
class FleetResult:
    """Every outcome, in the fleet's deterministic run order."""

    fleet: str
    outcomes: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def rows(self) -> dict:
        return {o.run_id: o.doc_row() for o in self.outcomes}

    def kpi_doc(self) -> dict:
        return kpi_doc(self.fleet, self.rows())

    def errors(self) -> list:
        return [(o.run_id, o.error) for o in self.outcomes if not o.ok]


def _run_dir_name(run_id: str) -> str:
    """Run ids become directory names; '/' is the only unsafe char."""
    return run_id.replace("/", "_")


def _execute_one(run_id: str, doc_json: str,
                 artifacts_dir: Optional[str]) -> dict:
    """One worker task; module-level so it pickles into pool workers.

    Returns a plain dict (not RunOutcome) to keep the pool protocol to
    stdlib types.  Never raises: any failure is folded into the result.
    """
    from ..config import ScenarioSpec, ensure_components, run_scenario
    from .kpis import extract_kpis
    try:
        ensure_components()
        spec = ScenarioSpec.from_dict(json.loads(doc_json))
        result = run_scenario(spec)
        snapshot = (result.cluster.metrics.snapshot()
                    if result.cluster is not None else {})
        row = extract_kpis(spec, snapshot, result.summary())
        artifacts = list(result.exported)
        if artifacts_dir is not None:
            run_dir = Path(artifacts_dir) / _run_dir_name(run_id)
            run_dir.mkdir(parents=True, exist_ok=True)
            metrics_path = run_dir / "metrics.json"
            metrics_path.write_text(
                json.dumps(snapshot, indent=1, sort_keys=True) + "\n")
            artifacts.append(str(metrics_path))
            if spec.obs.trace and result.cluster is not None:
                from ..obs import export_chrome_trace
                trace_path = run_dir / "trace.json"
                export_chrome_trace(result.cluster.tracer, trace_path,
                                    metrics=result.cluster.metrics)
                artifacts.append(str(trace_path))
        return {"run_id": run_id, "ok": True, "row": row.to_dict(),
                "artifacts": artifacts}
    except Exception as e:                      # noqa: BLE001 — fleet runs
        # must survive any one scenario failing, whatever the cause
        return {"run_id": run_id, "ok": False,
                "error": f"{type(e).__name__}: {e}",
                "trace": traceback.format_exc()}


def _to_outcome(raw: dict) -> RunOutcome:
    return RunOutcome(run_id=raw["run_id"], ok=raw["ok"],
                      row=raw.get("row"), error=raw.get("error"),
                      artifacts=tuple(raw.get("artifacts", ())))


def run_fleet(fleet: FleetSpec, jobs: int = 1,
              results_dir: Optional[str | Path] = None,
              progress: Optional[Callable[[RunOutcome], Any]] = None,
              ) -> FleetResult:
    """Run every scenario in ``fleet``; outcomes keep fleet order.

    ``jobs=1`` runs inline (no pool, easiest to debug); ``jobs>1``
    fans out over a :class:`~concurrent.futures.ProcessPoolExecutor`.
    ``results_dir`` enables per-run artifacts (``<dir>/<run_id>/
    metrics.json`` plus ``trace.json`` for tracing scenarios).
    ``progress`` is called with each :class:`RunOutcome` as it lands,
    in fleet order.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1 (got {jobs})")
    if results_dir is not None:
        results_dir = str(Path(results_dir))
        Path(results_dir).mkdir(parents=True, exist_ok=True)
    tasks = [(run_id, spec.canonical_json(), results_dir)
             for run_id, spec in fleet.runs]
    result = FleetResult(fleet=fleet.name)
    if jobs == 1 or len(tasks) == 1:
        raws = (_execute_one(*task) for task in tasks)
    else:
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(tasks)))
        with pool:
            futures = [pool.submit(_execute_one, *task) for task in tasks]
            raws = (f.result() for f in futures)
            raws = list(raws)   # drain inside the pool context
    for raw in raws:
        outcome = _to_outcome(raw)
        result.outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
    return result
