"""KPI regression diffing: current fleet results vs a checked-in baseline.

The same contract as the wall-clock ``BENCH_*.json`` mechanism
(:func:`repro.bench.perf.check_regression`), generalized to whole KPI
documents: a handful of *derived* KPIs get per-key relative tolerance
windows (quantiles interpolate inside histogram buckets, goodput
divides by makespan — both legitimately wiggle a few percent when
unrelated code changes shift a boundary observation across a bucket),
while everything else — message counts, fault counts, digests — is
bit-exact, because the simulation is deterministic and any drift there
is a real behavior change.

Failures are strings naming the run and the offending KPI, ready to
print; an empty list means the fleet is clean.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Optional

__all__ = ["DEFAULT_TOLERANCES", "diff_kpis", "diff_rows"]

#: relative tolerance per derived KPI; every KPI not listed is exact
DEFAULT_TOLERANCES: dict[str, float] = {
    "makespan_s": 0.10,
    "goodput_bytes_s": 0.10,
    "retransmit_rate": 0.15,
    "p50_delivery_s": 0.15,
    "p99_delivery_s": 0.15,
}


def _is_nan(value: Any) -> bool:
    return isinstance(value, float) and math.isnan(value)


def _check_value(key: str, base: Any, cur: Any,
                 tolerances: Mapping[str, float]) -> Optional[str]:
    """None when within tolerance, else a human-readable complaint."""
    if _is_nan(base) or _is_nan(cur):
        return f"{key}: NaN (baseline={base!r}, current={cur!r})"
    if base is None or cur is None:
        if base is None and cur is None:
            return None
        return f"{key}: baseline={base!r}, current={cur!r}"
    tol = tolerances.get(key)
    if tol is None or isinstance(base, str) or isinstance(cur, str):
        if base != cur:
            note = (" (spec changed; regenerate goldens if intended)"
                    if key in ("digest", "scenario") else "")
            return f"{key}: baseline={base!r}, current={cur!r}{note}"
        return None
    if base == 0:
        # no relative window around zero; a zero baseline must stay zero
        if cur != 0:
            return f"{key}: baseline=0, current={cur!r}"
        return None
    rel = abs(cur - base) / abs(base)
    if rel > tol:
        return (f"{key}: baseline={base!r}, current={cur!r} "
                f"({rel:+.1%} vs ±{tol:.0%} tolerance)")
    return None


def diff_rows(base_row: Mapping[str, Any], cur_row: Mapping[str, Any],
              tolerances: Optional[Mapping[str, float]] = None) -> list:
    """Compare one run's KPI rows; returns per-KPI complaints."""
    tolerances = DEFAULT_TOLERANCES if tolerances is None else tolerances
    problems: list[str] = []
    if "error" in base_row or "error" in cur_row:
        which = "baseline" if "error" in base_row else "current"
        row = base_row if "error" in base_row else cur_row
        return [f"{which} run failed: {row['error']}"]
    for key in sorted(set(base_row) | set(cur_row)):
        if key not in base_row:
            problems.append(f"{key}: not in baseline (new KPI? regenerate "
                            "goldens)")
        elif key not in cur_row:
            problems.append(f"{key}: missing from current run")
        else:
            complaint = _check_value(key, base_row[key], cur_row[key],
                                     tolerances)
            if complaint:
                problems.append(complaint)
    return problems


def diff_kpis(baseline: Mapping[str, Any], current: Mapping[str, Any],
              tolerances: Optional[Mapping[str, float]] = None) -> list:
    """Compare two KPI documents; returns ``"run_id: kpi: ..."`` failure
    strings, empty when the fleet is within tolerance."""
    failures: list[str] = []
    if baseline.get("schema") != current.get("schema"):
        failures.append(f"schema: baseline={baseline.get('schema')!r}, "
                        f"current={current.get('schema')!r} "
                        "(regenerate goldens)")
    base_rows = baseline.get("rows", {})
    cur_rows = current.get("rows", {})
    for run_id in sorted(set(base_rows) | set(cur_rows)):
        if run_id not in base_rows:
            failures.append(f"{run_id}: not in baseline (new run? "
                            "regenerate goldens)")
            continue
        if run_id not in cur_rows:
            failures.append(f"{run_id}: missing from current fleet")
            continue
        failures.extend(f"{run_id}: {p}"
                        for p in diff_rows(base_rows[run_id],
                                           cur_rows[run_id], tolerances))
    return failures
