"""The NYNET ATM wide-area testbed of Fig 1.

"NYNET is a high-speed fiber-optic communications network linking
multiple computing, communications, and research facilities in New York
State. ... Most of the wide area portion of the NYNET operates at speed
OC 48 (2.4 Gbps) while each site is connected with two OC 3 links
(155 Mbps).  The upstate to downstate connection is through DS-3
(45 Mbps) link." (§2)

We model a parameterizable version: a set of *sites*, each a FORE switch
with some hosts on TAXI links, connected to a WAN backbone.  Upstate
sites hang off an OC-48 backbone switch; the downstate region connects
through the DS-3 bottleneck.  Every host gets the same dual stack as
:func:`repro.net.topology.build_atm_cluster` (classical-IP PVC mesh +
raw HSM PVC mesh), so any experiment can run unchanged over the WAN.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..atm import (
    AtmApi, AtmFabric, AtmSwitch, DS3, OC3, OC48, Sba200Adapter,
    SignalingController, TAXI_140,
)
from ..hosts import Host, HostParams, OsProcess, SUN_IPX
from ..protocols import AtmIpAdapter, IpLayer, SocketLayer, TcpParams, TcpStack, UdpStack
from ..obs.registry import MetricsRegistry, NULL_REGISTRY
from ..registry import TOPOLOGIES
from ..sim import NullTracer, RngRegistry, Simulator, Tracer
from .topology import Cluster, NodeStack

__all__ = ["SiteSpec", "build_nynet", "build_nynet_from_spec",
           "build_wan_ring", "nynet_testbed"]


@dataclass(frozen=True)
class SiteSpec:
    """One NYNET site: a name, how many hosts, and which region it's in."""

    name: str
    n_hosts: int
    region: str = "upstate"      # "upstate" | "downstate"

    def __post_init__(self) -> None:
        if self.n_hosts < 0:
            raise ValueError("n_hosts must be non-negative")
        if self.region not in ("upstate", "downstate"):
            raise ValueError(f"unknown region {self.region!r}")


def build_nynet(sites: list[SiteSpec],
                params: HostParams = SUN_IPX,
                tcp_params: TcpParams | None = None,
                seed: int = 1995,
                trace: bool = False,
                metrics: bool = True,
                train_cells: int = 256,
                preconnect: bool = True) -> Cluster:
    """Build the Fig 1 testbed with the given sites.

    Topology: ``host --TAXI-- site switch --OC-3-- regional backbone``;
    the two regional backbones (upstate OC-48 ring collapsed to one
    switch, downstate) connect through the DS-3 link.
    """
    if not sites or all(s.n_hosts == 0 for s in sites):
        raise ValueError("need at least one site with hosts")
    if len({s.name for s in sites}) != len(sites):
        raise ValueError("site names must be unique")
    sim = Simulator(metrics=MetricsRegistry() if metrics else NULL_REGISTRY)
    rngs = RngRegistry(seed)
    tracer = Tracer(sim) if trace else NullTracer(sim)
    fabric = AtmFabric(sim)

    upstate_bb = fabric.add_switch(AtmSwitch(sim, "bb-upstate"))
    downstate_bb = fabric.add_switch(AtmSwitch(sim, "bb-downstate"))
    # the upstate-downstate DS-3 bottleneck
    fabric.connect(upstate_bb, downstate_bb, DS3)

    stacks: list[NodeStack] = []
    pid = 0
    for site in sites:
        sw = fabric.add_switch(AtmSwitch(sim, f"sw-{site.name}"))
        backbone = upstate_bb if site.region == "upstate" else downstate_bb
        fabric.connect(sw, backbone, OC3)
        for k in range(site.n_hosts):
            name = f"{site.name}{k}"
            host = Host(sim, name, cpu=params.cpu, os=params.os,
                        tracer=tracer)
            sba = Sba200Adapter(sim, name, train_cells=train_cells)
            host.attach_interface("atm", sba)
            fabric.add_adapter(sba)
            rng = rngs.stream(f"link.{name}")
            fabric.connect(sba, sw, TAXI_140, rng_a=rng, rng_b=rng)
            atm_api = AtmApi(host)
            ip_adapter = AtmIpAdapter(atm_api)
            ip = IpLayer(sim, name, ip_adapter)
            ip_adapter.bind(ip)
            tcp = TcpStack(host, ip, tcp_params)
            stacks.append(NodeStack(
                host=host, process=OsProcess(host, pid=pid), ip=ip, tcp=tcp,
                socket=SocketLayer(host, tcp), udp=UdpStack(host, ip),
                atm_api=atm_api))
            pid += 1

    sig = SignalingController(fabric)
    cluster = Cluster(sim=sim, rngs=rngs, tracer=tracer, stacks=stacks,
                      medium="nynet", fabric=fabric, signaling=sig)
    names = [s.host.name for s in stacks]
    for i, src in enumerate(names):
        for j, dst in enumerate(names):
            if i != j:
                vc = sig.create_pvc(src, dst)
                stacks[i].ip.adapter.register_vc(dst, vc)
                stacks[j].ip.adapter.add_rx_vc(vc)
                cluster.hsm_vcs[(i, j)] = sig.create_pvc(src, dst)
    if preconnect:
        cluster.preestablish_tcp_mesh()
    return cluster


@TOPOLOGIES.register(
    "nynet-testbed",
    help="Two-region NYNET: upstate + downstate sites over the DS-3 (Fig 1)")
def nynet_testbed(n_upstate: int = 4, n_downstate: int = 2, **kw) -> Cluster:
    """The canonical two-region instance used by the Fig 1 benchmark:
    a Syracuse-like upstate site and an NYC-like downstate site."""
    return build_nynet([
        SiteSpec("syr", n_upstate, "upstate"),
        SiteSpec("nyc", n_downstate, "downstate"),
    ], **kw)


@TOPOLOGIES.register(
    "nynet", help="The Fig 1 NYNET WAN from declarative site tables")
def build_nynet_from_spec(sites: list, **kw) -> Cluster:
    """Spec-facing :func:`build_nynet`: ``sites`` as plain tables
    (``{name = ..., n_hosts = ..., region = ...}``) so a scenario file
    can declare the whole WAN."""
    site_specs = []
    for i, site in enumerate(sites):
        if isinstance(site, SiteSpec):
            site_specs.append(site)
        elif isinstance(site, dict):
            try:
                site_specs.append(SiteSpec(**site))
            except TypeError as e:
                raise ValueError(
                    f"cluster.options.sites[{i}]: {e}; expected keys "
                    "name, n_hosts, region") from None
        else:
            raise ValueError(
                f"cluster.options.sites[{i}]: expected a table, "
                f"got {site!r}")
    return build_nynet(site_specs, **kw)


@TOPOLOGIES.register(
    "wan-ring",
    help="N site switches in a DS-3 ring, one shardable site per switch")
def build_wan_ring(n_sites: int = 8,
                   hosts_per_site: int = 1,
                   params: HostParams = SUN_IPX,
                   tcp_params: TcpParams | None = None,
                   seed: int = 1995,
                   trace: bool = False,
                   metrics: bool = True,
                   train_cells: int = 256,
                   preconnect: bool = True) -> Cluster:
    """A ring of NYNET-style sites for kernel-scaling experiments.

    ``n_sites`` FORE switches sit on a DS-3 ring (each trunk is
    deterministic and carries the full 2 ms propagation delay), with
    ``hosts_per_site`` TAXI hosts behind each switch.  Because every
    inter-site trunk is a switch-to-switch link with non-zero
    propagation and no error RNG, the sharded kernel can cut the ring
    anywhere: each site becomes its own shard group and the DS-3 delay
    is the conservative lookahead.  Hosts get the same dual stack
    (classical-IP PVC mesh + raw HSM PVC mesh) as every other topology.
    """
    if n_sites < 1:
        raise ValueError("n_sites must be >= 1")
    if hosts_per_site < 1:
        raise ValueError("hosts_per_site must be >= 1")
    sim = Simulator(metrics=MetricsRegistry() if metrics else NULL_REGISTRY)
    rngs = RngRegistry(seed)
    tracer = Tracer(sim) if trace else NullTracer(sim)
    fabric = AtmFabric(sim)

    switches = [fabric.add_switch(AtmSwitch(sim, f"sw-r{i}"))
                for i in range(n_sites)]
    if n_sites == 2:            # a 2-ring would double the single trunk
        fabric.connect(switches[0], switches[1], DS3)
    elif n_sites > 2:
        for i in range(n_sites):
            fabric.connect(switches[i], switches[(i + 1) % n_sites], DS3)

    stacks: list[NodeStack] = []
    pid = 0
    for i, sw in enumerate(switches):
        for k in range(hosts_per_site):
            name = f"r{i}h{k}"
            host = Host(sim, name, cpu=params.cpu, os=params.os,
                        tracer=tracer)
            sba = Sba200Adapter(sim, name, train_cells=train_cells)
            host.attach_interface("atm", sba)
            fabric.add_adapter(sba)
            rng = rngs.stream(f"link.{name}")
            fabric.connect(sba, sw, TAXI_140, rng_a=rng, rng_b=rng)
            atm_api = AtmApi(host)
            ip_adapter = AtmIpAdapter(atm_api)
            ip = IpLayer(sim, name, ip_adapter)
            ip_adapter.bind(ip)
            tcp = TcpStack(host, ip, tcp_params)
            stacks.append(NodeStack(
                host=host, process=OsProcess(host, pid=pid), ip=ip, tcp=tcp,
                socket=SocketLayer(host, tcp), udp=UdpStack(host, ip),
                atm_api=atm_api))
            pid += 1

    sig = SignalingController(fabric)
    cluster = Cluster(sim=sim, rngs=rngs, tracer=tracer, stacks=stacks,
                      medium="wan-ring", fabric=fabric, signaling=sig)
    names = [s.host.name for s in stacks]
    for i, src in enumerate(names):
        for j, dst in enumerate(names):
            if i != j:
                vc = sig.create_pvc(src, dst)
                stacks[i].ip.adapter.register_vc(dst, vc)
                stacks[j].ip.adapter.add_rx_vc(vc)
                cluster.hsm_vcs[(i, j)] = sig.create_pvc(src, dst)
    if preconnect:
        cluster.preestablish_tcp_mesh()
    return cluster
