"""The NYNET ATM wide-area testbed of Fig 1.

"NYNET is a high-speed fiber-optic communications network linking
multiple computing, communications, and research facilities in New York
State. ... Most of the wide area portion of the NYNET operates at speed
OC 48 (2.4 Gbps) while each site is connected with two OC 3 links
(155 Mbps).  The upstate to downstate connection is through DS-3
(45 Mbps) link." (§2)

We model a parameterizable version: a set of *sites*, each a FORE switch
with some hosts on TAXI links, connected to a WAN backbone.  Upstate
sites hang off an OC-48 backbone switch; the downstate region connects
through the DS-3 bottleneck.  Every host gets the same dual stack as
:func:`repro.net.topology.build_atm_cluster` (classical-IP PVC mesh +
raw HSM PVC mesh), so any experiment can run unchanged over the WAN.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..atm import (
    AtmApi, AtmFabric, AtmSwitch, DS3, OC3, OC48, Sba200Adapter,
    SignalingController, TAXI_140,
)
from ..hosts import Host, HostParams, OsProcess, SUN_IPX
from ..protocols import AtmIpAdapter, IpLayer, SocketLayer, TcpParams, TcpStack, UdpStack
from ..obs.registry import MetricsRegistry, NULL_REGISTRY
from ..registry import TOPOLOGIES
from ..sim import NullTracer, RngRegistry, Simulator, Tracer
from .blueprint import blueprint_nynet, blueprint_wan_ring, materialize
from .topology import Cluster, NodeStack

__all__ = ["SiteSpec", "build_nynet", "build_nynet_from_spec",
           "build_wan_ring", "nynet_testbed"]


@dataclass(frozen=True)
class SiteSpec:
    """One NYNET site: a name, how many hosts, and which region it's in."""

    name: str
    n_hosts: int
    region: str = "upstate"      # "upstate" | "downstate"

    def __post_init__(self) -> None:
        if self.n_hosts < 0:
            raise ValueError("n_hosts must be non-negative")
        if self.region not in ("upstate", "downstate"):
            raise ValueError(f"unknown region {self.region!r}")


def build_nynet(sites: list[SiteSpec],
                params: HostParams = SUN_IPX,
                tcp_params: TcpParams | None = None,
                seed: int = 1995,
                trace: bool = False,
                metrics: bool = True,
                train_cells: int = 256,
                preconnect: bool = True) -> Cluster:
    """Build the Fig 1 testbed with the given sites.

    Topology: ``host --TAXI-- site switch --OC-3-- regional backbone``;
    the two regional backbones (upstate OC-48 ring collapsed to one
    switch, downstate) connect through the DS-3 link.
    """
    return materialize(blueprint_nynet(
        sites, params=params, tcp_params=tcp_params, seed=seed,
        trace=trace, metrics=metrics, train_cells=train_cells,
        preconnect=preconnect))


@TOPOLOGIES.register(
    "nynet-testbed",
    help="Two-region NYNET: upstate + downstate sites over the DS-3 (Fig 1)")
def nynet_testbed(n_upstate: int = 4, n_downstate: int = 2, **kw) -> Cluster:
    """The canonical two-region instance used by the Fig 1 benchmark:
    a Syracuse-like upstate site and an NYC-like downstate site."""
    return build_nynet([
        SiteSpec("syr", n_upstate, "upstate"),
        SiteSpec("nyc", n_downstate, "downstate"),
    ], **kw)


@TOPOLOGIES.register(
    "nynet", help="The Fig 1 NYNET WAN from declarative site tables")
def build_nynet_from_spec(sites: list, **kw) -> Cluster:
    """Spec-facing :func:`build_nynet`: ``sites`` as plain tables
    (``{name = ..., n_hosts = ..., region = ...}``) so a scenario file
    can declare the whole WAN."""
    return materialize(blueprint_nynet(sites, **kw))


@TOPOLOGIES.register(
    "wan-ring",
    help="N site switches in a DS-3 ring, one shardable site per switch")
def build_wan_ring(n_sites: int = 8,
                   hosts_per_site: int = 1,
                   params: HostParams = SUN_IPX,
                   tcp_params: TcpParams | None = None,
                   seed: int = 1995,
                   trace: bool = False,
                   metrics: bool = True,
                   train_cells: int = 256,
                   preconnect: bool = True) -> Cluster:
    """A ring of NYNET-style sites for kernel-scaling experiments.

    ``n_sites`` FORE switches sit on a DS-3 ring (each trunk is
    deterministic and carries the full 2 ms propagation delay), with
    ``hosts_per_site`` TAXI hosts behind each switch.  Because every
    inter-site trunk is a switch-to-switch link with non-zero
    propagation and no error RNG, the sharded kernel can cut the ring
    anywhere: each site becomes its own shard group and the DS-3 delay
    is the conservative lookahead.  Hosts get the same dual stack
    (classical-IP PVC mesh + raw HSM PVC mesh) as every other topology.
    """
    return materialize(blueprint_wan_ring(
        n_sites=n_sites, hosts_per_site=hosts_per_site, params=params,
        tcp_params=tcp_params, seed=seed, trace=trace, metrics=metrics,
        train_cells=train_cells, preconnect=preconnect))
