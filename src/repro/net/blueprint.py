"""Two-phase topology construction: declarative blueprints + materialize.

Phase 1 — a registered blueprint builder (:data:`repro.registry.BLUEPRINTS`,
same name and signature as the matching :data:`~repro.registry.TOPOLOGIES`
entry) produces a :class:`TopologyBlueprint`: a cheap, frozen description
of every switch, trunk, host and LAN segment, in **exact global
construction order**.  Building a blueprint allocates no simulator, no
processes and no O(n²) VC mesh, so a coordinator can plan a 1024-host
WAN in microseconds.

Phase 2 — :func:`materialize` instantiates a blueprint:

* ``materialize(bp)`` replays the imperative builder call-for-call and
  returns a cluster **byte-identical** to the pre-blueprint construction
  (the perf-lock and determinism goldens hold over this path);
* ``materialize(bp, owned_switches=...)`` builds a *partial* universe
  for one shard of the sharded kernel: only hosts behind owned switches
  (and the owned switches themselves) become real simulation objects.
  Foreign switches at a cut trunk are replaced by :class:`_StubSwitch`
  boundary stubs — inert name-carriers terminating the materialized cut
  channels, whose traffic the kernel's export/``schedule_at`` seam
  carries instead — and foreign hosts by :class:`GhostStack` rows that
  keep ``cluster.stacks`` full-length and pid-stable.

The partial path must still agree with every other universe on VC
identifiers and VCIs, because cross-shard bursts are re-bound by
``vc_id`` and forwarded by switch ``(channel, VCI)`` tables.  It
therefore replays the **entire global mesh** over a shadow name-graph
(same node/edge insertion order and weights as the real fabric, so
Dijkstra tie-breaks agree), allocating VCIs and ``vc_id`` sequence
numbers for every pair while instantiating state only for pairs that
touch the shard (as endpoint or transit switch).  Pairs that merely
transit an owned switch get a tiny :class:`_TransitVc` so burst
re-binding works without the per-VC object weight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import pairwise
from typing import Any, Optional

import networkx as nx

from ..atm.link import DS3, LinkSpec, OC3, TAXI_140
from ..hosts import HostParams, SUN_ELC, SUN_IPX
from ..registry import BLUEPRINTS

__all__ = [
    "SwitchItem", "TrunkItem", "HostItem", "LanItem", "TopologyBlueprint",
    "materialize", "PlanView", "GhostStack",
]


# --------------------------------------------------------------------------
# the declarative model
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class SwitchItem:
    """One ATM switch: create ``AtmSwitch(sim, name, latency_s)``."""

    name: str
    site: Optional[str] = None
    latency_s: float = 10e-6


@dataclass(frozen=True)
class TrunkItem:
    """One switch-to-switch duplex trunk (``fabric.connect(a, b, spec)``)."""

    a: str
    b: str
    spec: LinkSpec
    #: deterministic WAN trunk the sharded kernel may cut
    cut_eligible: bool = False


@dataclass(frozen=True)
class HostItem:
    """One host row: full protocol stack, attached to ``switch`` (if any)."""

    name: str
    pid: int
    site: Optional[str] = None
    switch: Optional[str] = None
    link_spec: Optional[LinkSpec] = None


@dataclass(frozen=True)
class LanItem:
    """The shared Ethernet segment (ethernet / dual-rail topologies)."""

    bandwidth_bps: float = 10e6
    collisions: bool = False


@dataclass(frozen=True)
class TopologyBlueprint:
    """A topology, fully described but not yet instantiated.

    ``items`` holds :class:`SwitchItem`/:class:`TrunkItem`/:class:`HostItem`
    rows in the **exact order** the imperative builder would create them —
    materializing the whole tuple replays the builder byte-for-byte.
    """

    medium: str                  # "ethernet" | "atm-lan" | "atm-dual" | ...
    seed: int
    trace: bool
    metrics: bool
    params: HostParams
    tcp_params: Any              # Optional[TcpParams] (kept opaque)
    train_cells: int
    preconnect: bool
    host_rail: str               # "ethernet" | "atm" | "dual"
    #: PVC mesh style: "none" (no fabric mesh), "separate" (classical
    #: mesh pass then HSM mesh pass), "interleaved" (classical + HSM per
    #: pair), "hsm-only" (dual-rail: IP rides the LAN)
    mesh: str
    lan: Optional[LanItem] = None
    items: tuple = ()

    @property
    def hosts(self) -> list[HostItem]:
        return [it for it in self.items if isinstance(it, HostItem)]

    @property
    def switches(self) -> list[SwitchItem]:
        return [it for it in self.items if isinstance(it, SwitchItem)]

    @property
    def trunks(self) -> list[TrunkItem]:
        return [it for it in self.items if isinstance(it, TrunkItem)]

    @property
    def n_hosts(self) -> int:
        return sum(1 for it in self.items if isinstance(it, HostItem))


# --------------------------------------------------------------------------
# boundary stubs + ghost rows (partial materialization)
# --------------------------------------------------------------------------

class _StubSwitch:
    """A foreign switch at a cut: a name-carrier terminating the cut
    channel replica.  Never added to ``fabric.switches`` (no metrics, no
    forwarding); its incoming channel's ``_dispatch`` is either exported
    by the sharded kernel (owned direction) or never fires (foreign
    direction — the stub never transmits)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<StubSwitch {self.name}>"


class _StubAdapter:
    """A foreign VC endpoint: just the host name, for ``VirtualChannel``
    repr/identity on pairs whose other end lives in another shard."""

    __slots__ = ("host_name",)

    def __init__(self, host_name: str):
        self.host_name = host_name


class _GhostHost:
    """The ``.host`` of a :class:`GhostStack`: name + liveness flag."""

    __slots__ = ("name", "frozen")

    def __init__(self, name: str):
        self.name = name
        self.frozen = False


class GhostStack:
    """A non-materialized host row: keeps ``cluster.stacks`` full-length
    so pids, names and merge rules stay global.  ``NcsRuntime`` detects
    the ``ghost`` marker and attaches a tid-mirroring ghost node instead
    of a real scheduler/transport/MPS."""

    ghost = True
    __slots__ = ("host", "pid")

    def __init__(self, name: str, pid: int):
        self.host = _GhostHost(name)
        self.pid = pid

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<GhostStack pid={self.pid} {self.host.name}>"


class _TransitVc:
    """A VC that only *transits* this shard: enough identity for burst
    re-binding (``sig.open_vcs[vc_id]``) and re-export, nothing more."""

    __slots__ = ("vc_id",)

    def __init__(self, vc_id: int):
        self.vc_id = vc_id


# --------------------------------------------------------------------------
# materialize: full replay
# --------------------------------------------------------------------------

def materialize(bp: TopologyBlueprint, owned_switches=None):
    """Instantiate a blueprint into a :class:`~repro.net.topology.Cluster`.

    With ``owned_switches=None`` the full universe is built, replaying
    the imperative builder exactly.  With a set of switch names, a
    partial shard universe is built (ATM-rail, LAN-free topologies
    only): hosts behind foreign switches become :class:`GhostStack`
    rows, foreign switches become boundary stubs, and the global VC
    mesh is replayed over a shadow graph so identifiers match every
    other shard bit-for-bit.
    """
    if owned_switches is None:
        return _materialize_full(bp)
    return _materialize_partial(bp, frozenset(owned_switches))


def _build_host(bp, sim, rngs, tracer, lan, fabric, switches, item):
    """One host row, in the imperative builders' exact call order."""
    from ..atm import AtmApi, Sba200Adapter
    from ..ethernet import EthernetNic
    from ..hosts import Host, OsProcess
    from ..protocols import (AtmIpAdapter, EthernetIpAdapter, IpLayer,
                             SocketLayer, TcpStack, UdpStack)
    from .topology import NodeStack

    params = bp.params
    name = item.name
    host = Host(sim, name, cpu=params.cpu, os=params.os, tracer=tracer)
    nic = None
    if bp.host_rail in ("ethernet", "dual"):
        nic = EthernetNic(sim, lan, name)
        host.attach_interface("ethernet", nic)
    if bp.host_rail in ("atm", "dual"):
        sba = Sba200Adapter(sim, name, train_cells=bp.train_cells)
        host.attach_interface("atm", sba)
        fabric.add_adapter(sba)
        rng = rngs.stream(f"link.{name}")
        fabric.connect(sba, switches[item.switch], item.link_spec,
                       rng_a=rng, rng_b=rng)
    if bp.host_rail == "atm":
        atm_api = AtmApi(host)
        ip_adapter = AtmIpAdapter(atm_api)
    elif bp.host_rail == "dual":
        atm_api = AtmApi(host)
        ip_adapter = EthernetIpAdapter(nic)
    else:
        atm_api = None
        ip_adapter = EthernetIpAdapter(nic)
    ip = IpLayer(sim, name, ip_adapter)
    ip_adapter.bind(ip)
    tcp = TcpStack(host, ip, bp.tcp_params)
    return NodeStack(
        host=host, process=OsProcess(host, pid=item.pid), ip=ip, tcp=tcp,
        socket=SocketLayer(host, tcp), udp=UdpStack(host, ip),
        atm_api=atm_api)


def _fresh_universe(bp):
    """Simulator / RNG registry / tracer / LAN, in builder order."""
    from ..ethernet import EthernetLan
    from ..obs.registry import MetricsRegistry, NULL_REGISTRY
    from ..sim import NullTracer, RngRegistry, Simulator, Tracer

    sim = Simulator(metrics=MetricsRegistry() if bp.metrics
                    else NULL_REGISTRY)
    rngs = RngRegistry(bp.seed)
    tracer = Tracer(sim) if bp.trace else NullTracer(sim)
    lan = None
    if bp.lan is not None:
        lan = EthernetLan(sim, bandwidth_bps=bp.lan.bandwidth_bps,
                          collisions=bp.lan.collisions, rngs=rngs)
    return sim, rngs, tracer, lan


def _materialize_full(bp: TopologyBlueprint):
    from ..atm import AtmFabric, AtmSwitch, SignalingController
    from .topology import Cluster

    sim, rngs, tracer, lan = _fresh_universe(bp)
    fabric = AtmFabric(sim) if bp.host_rail != "ethernet" else None
    switches: dict[str, Any] = {}
    stacks = []
    for item in bp.items:
        if isinstance(item, SwitchItem):
            switches[item.name] = fabric.add_switch(
                AtmSwitch(sim, item.name, switching_latency_s=item.latency_s))
        elif isinstance(item, TrunkItem):
            fabric.connect(switches[item.a], switches[item.b], item.spec)
        else:
            stacks.append(_build_host(bp, sim, rngs, tracer, lan, fabric,
                                      switches, item))
    sig = SignalingController(fabric) if fabric is not None else None
    cluster = Cluster(sim=sim, rngs=rngs, tracer=tracer, stacks=stacks,
                      medium=bp.medium, lan=lan, fabric=fabric,
                      signaling=sig)
    names = [s.host.name for s in stacks]
    n = len(names)
    if bp.mesh == "separate":
        for i in range(n):
            for j in range(n):
                if i != j:
                    vc = sig.create_pvc(names[i], names[j])
                    stacks[i].ip.adapter.register_vc(names[j], vc)
                    stacks[j].ip.adapter.add_rx_vc(vc)
        for i in range(n):
            for j in range(n):
                if i != j:
                    cluster.hsm_vcs[(i, j)] = sig.create_pvc(
                        names[i], names[j])
    elif bp.mesh == "interleaved":
        for i, src in enumerate(names):
            for j, dst in enumerate(names):
                if i != j:
                    vc = sig.create_pvc(src, dst)
                    stacks[i].ip.adapter.register_vc(dst, vc)
                    stacks[j].ip.adapter.add_rx_vc(vc)
                    cluster.hsm_vcs[(i, j)] = sig.create_pvc(src, dst)
    elif bp.mesh == "hsm-only":
        for i in range(n):
            for j in range(n):
                if i != j:
                    cluster.hsm_vcs[(i, j)] = sig.create_pvc(
                        names[i], names[j])
    if bp.preconnect:
        cluster.preestablish_tcp_mesh()
    return cluster


# --------------------------------------------------------------------------
# materialize: partial (per-shard) replay
# --------------------------------------------------------------------------

def _shadow_graph(bp: TopologyBlueprint) -> nx.Graph:
    """A name-keyed replica of the fabric graph with identical node/edge
    insertion order and weights, so single-source shortest paths (and
    their Dijkstra tie-breaks) agree with the real fabric's."""
    g = nx.Graph()
    for item in bp.items:
        if isinstance(item, SwitchItem):
            g.add_node(item.name)
        elif isinstance(item, TrunkItem):
            g.add_edge(item.a, item.b,
                       weight=item.spec.prop_delay_s + 1e-9,
                       link=(f"{item.a}--{item.b}", item.a))
        elif item.switch is not None:
            g.add_node(item.name)
            g.add_edge(item.name, item.switch,
                       weight=item.link_spec.prop_delay_s + 1e-9,
                       link=(f"{item.name}--{item.switch}", item.name))
    return g


def _materialize_partial(bp: TopologyBlueprint, owned: frozenset):
    from ..atm import AtmFabric, AtmSwitch, SignalingController
    from ..atm.signaling import FIRST_USER_VCI, VirtualChannel
    from .topology import Cluster

    if bp.host_rail != "atm" or bp.lan is not None:
        raise ValueError(
            f"partial materialization requires a pure ATM-rail topology "
            f"without a shared LAN; {bp.medium!r} has "
            f"host_rail={bp.host_rail!r}, lan={bp.lan is not None}")
    all_switches = {it.name for it in bp.items if isinstance(it, SwitchItem)}
    unknown = owned - all_switches
    if unknown:
        raise ValueError(f"owned_switches names unknown switches: "
                         f"{sorted(unknown)}")

    sim, rngs, tracer, _lan = _fresh_universe(bp)
    fabric = AtmFabric(sim)
    switches: dict[str, Any] = {}        # owned, real
    stubs: dict[str, _StubSwitch] = {}   # foreign, at a cut
    stacks: list[Any] = []
    owned_hosts: set[str] = set()
    for item in bp.items:
        if isinstance(item, SwitchItem):
            if item.name in owned:
                switches[item.name] = fabric.add_switch(AtmSwitch(
                    sim, item.name, switching_latency_s=item.latency_s))
            else:
                stubs[item.name] = _StubSwitch(item.name)
        elif isinstance(item, TrunkItem):
            if item.a in owned or item.b in owned:
                na = switches.get(item.a) or stubs[item.a]
                nb = switches.get(item.b) or stubs[item.b]
                fabric.connect(na, nb, item.spec)
        elif item.switch in owned:
            stacks.append(_build_host(bp, sim, rngs, tracer, None, fabric,
                                      switches, item))
            owned_hosts.add(item.name)
        else:
            stacks.append(GhostStack(item.name, item.pid))
    sig = SignalingController(fabric)
    cluster = Cluster(sim=sim, rngs=rngs, tracer=tracer, stacks=stacks,
                      medium=bp.medium, fabric=fabric, signaling=sig)
    _replay_mesh(bp, cluster, owned, owned_hosts, FIRST_USER_VCI,
                 VirtualChannel)
    if bp.preconnect:
        names = [s.host.name for s in stacks]
        for i, stack in enumerate(stacks):
            if getattr(stack, "ghost", False):
                continue
            for j, dst in enumerate(names):
                if i != j:
                    stack.tcp.connection(dst).established = True
    return cluster


def _replay_mesh(bp, cluster, owned, owned_hosts, first_vci, vc_cls) -> None:
    """Replay the global PVC mesh over the shadow graph.

    Every (src, dst) pair advances the VCI allocators and the ``vc_id``
    sequence exactly as ``create_pvc`` would in the full universe; only
    pairs that touch this shard (endpoint or transit switch) leave state
    behind: switch table entries, ``open_vcs`` registrations, classical
    IP wiring on owned endpoints, and ``hsm_vcs`` rows.
    """
    sig = cluster.signaling
    stacks = cluster.stacks
    names = [s.host.name for s in stacks]
    n = len(names)
    shadow = _shadow_graph(bp)

    # directed channel name -> materialized channel object
    channels: dict[str, Any] = {}
    for _a, _b, data in cluster.fabric.graph.edges(data=True):
        link = data["link"]
        channels[link.fwd.name] = link.fwd
        channels[link.rev.name] = link.rev

    next_vci: dict[str, int] = {}        # directed channel name -> next VCI
    vc_seq = 0
    stub_adapters: dict[str, _StubAdapter] = {}
    adapters = cluster.fabric.adapters
    # the mesh iterates src-major: cache one source's single-source
    # shortest paths at a time (a full cache is O(n² · path) memory,
    # which would defeat memory-proportional workers)
    path_cache: dict[str, Any] = {"src": None, "paths": None}

    def paths_from(src_name):
        if path_cache["src"] != src_name:
            path_cache["src"] = src_name
            path_cache["paths"] = nx.shortest_path(
                shadow, src_name, weight="weight")
        return path_cache["paths"]

    def endpoint(host_name):
        ad = adapters.get(host_name)
        if ad is None:
            ad = stub_adapters.get(host_name)
            if ad is None:
                ad = stub_adapters[host_name] = _StubAdapter(host_name)
        return ad

    def replay_pair(src, dst):
        """One ``create_pvc(src, dst)`` replayed; returns the VC if the
        pair touches this shard, else ``None``."""
        nonlocal vc_seq
        node_path = paths_from(src)[dst]
        hop_names = []
        for u, v in pairwise(node_path):
            lname, start = shadow.edges[u, v]["link"]
            hop_names.append(lname + (">" if start == u else "<"))
        vcis = []
        for hn in hop_names:
            nxt = next_vci.get(hn, first_vci)
            next_vci[hn] = nxt + 1
            vcis.append(nxt)
        vc_seq += 1
        interior = node_path[1:-1]
        src_owned = src in owned_hosts
        dst_owned = dst in owned_hosts
        if not (src_owned or dst_owned
                or any(sw in owned for sw in interior)):
            return None
        for k, swn in enumerate(interior):
            sw = cluster.fabric.switches.get(swn)
            if sw is not None:
                sw.program(channels[hop_names[k]], vcis[k],
                           channels[hop_names[k + 1]], vcis[k + 1])
        if src_owned or dst_owned:
            vc = vc_cls(
                vc_id=vc_seq, src=endpoint(src), dst=endpoint(dst),
                src_vci=vcis[0],
                hops=[channels[hn] for hn in hop_names if hn in channels],
                hop_vcis=vcis)
        else:
            vc = _TransitVc(vc_seq)
        sig.open_vcs[vc.vc_id] = vc
        return vc

    def classical(i, j, vc):
        if vc is None:
            return
        if names[i] in owned_hosts:
            stacks[i].ip.adapter.register_vc(names[j], vc)
        if names[j] in owned_hosts:
            stacks[j].ip.adapter.add_rx_vc(vc)

    def hsm(i, j, vc):
        if vc is not None and (names[i] in owned_hosts
                               or names[j] in owned_hosts):
            cluster.hsm_vcs[(i, j)] = vc

    if bp.mesh == "separate":
        for i in range(n):
            for j in range(n):
                if i != j:
                    classical(i, j, replay_pair(names[i], names[j]))
        for i in range(n):
            for j in range(n):
                if i != j:
                    hsm(i, j, replay_pair(names[i], names[j]))
    elif bp.mesh == "interleaved":
        for i in range(n):
            for j in range(n):
                if i != j:
                    classical(i, j, replay_pair(names[i], names[j]))
                    hsm(i, j, replay_pair(names[i], names[j]))
    elif bp.mesh == "hsm-only":
        for i in range(n):
            for j in range(n):
                if i != j:
                    hsm(i, j, replay_pair(names[i], names[j]))

    # leave the signaling allocators exactly where the full universe's
    # would be, so any runtime VC setup stays globally consistent
    sig._vc_seq = vc_seq
    for hn, ch in channels.items():
        if hn in next_vci:
            sig._next_vci[id(ch)] = next_vci[hn]


# --------------------------------------------------------------------------
# PlanView: duck-typed Cluster facade for plan_shards
# --------------------------------------------------------------------------

class _BpNamed:
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


class _BpAdapter:
    __slots__ = ("host_name",)

    def __init__(self, host_name: str):
        self.host_name = host_name


class _BpChannel:
    __slots__ = ("name", "endpoint", "spec", "_rng")

    def __init__(self, name, endpoint, spec, rng):
        self.name = name
        self.endpoint = endpoint
        self.spec = spec
        self._rng = rng


class _BpLink:
    __slots__ = ("fwd", "rev")

    def __init__(self, fwd, rev):
        self.fwd = fwd
        self.rev = rev


class _BpFabric:
    """Fabric facade: same adapters/switches/graph shape, fake nodes."""

    def __init__(self):
        self.graph = nx.Graph()
        self.adapters: dict[str, _BpAdapter] = {}
        self.switches: dict[str, _BpNamed] = {}


#: stands in for a host link's shared error rng (plan_shards only
#: checks ``_rng is not None``)
_RNG_SENTINEL = object()


class PlanView:
    """Enough of the ``Cluster`` surface for ``plan_shards`` to partition
    a blueprint without building anything: host names in pid order, a
    fake fabric graph with real link specs and channel names, and the
    LAN marker.  Plans computed here are identical to plans computed
    from the materialized cluster (same names, same specs, same
    neighborhoods)."""

    def __init__(self, bp: TopologyBlueprint):
        self.lan = object() if bp.lan is not None else None
        self._hosts: list[_BpNamed] = []
        fabric = _BpFabric() if bp.host_rail != "ethernet" else None

        def connect(a, b, a_name, b_name, spec, rng):
            base = f"{a_name}--{b_name}"
            link = _BpLink(_BpChannel(f"{base}>", b, spec, rng),
                           _BpChannel(f"{base}<", a, spec, rng))
            fabric.graph.add_edge(a, b, link=link,
                                  weight=spec.prop_delay_s + 1e-9)

        for item in bp.items:
            if isinstance(item, SwitchItem):
                sw = _BpNamed(item.name)
                fabric.switches[item.name] = sw
                fabric.graph.add_node(sw)
            elif isinstance(item, TrunkItem):
                connect(fabric.switches[item.a], fabric.switches[item.b],
                        item.a, item.b, item.spec, None)
            else:
                self._hosts.append(_BpNamed(item.name))
                if fabric is not None:
                    ad = _BpAdapter(item.name)
                    fabric.adapters[item.name] = ad
                    fabric.graph.add_node(ad)
                    if item.switch is not None:
                        connect(ad, fabric.switches[item.switch],
                                item.name, item.switch, item.link_spec,
                                _RNG_SENTINEL)
        self.fabric = fabric
        self.n_hosts = len(self._hosts)

    def host(self, pid: int) -> _BpNamed:
        return self._hosts[pid]


# --------------------------------------------------------------------------
# registered blueprint builders (mirror the TOPOLOGIES signatures)
# --------------------------------------------------------------------------

def _host_items(n_hosts, switch, link_spec, start_pid=0, site=None,
                name=None):
    return tuple(
        HostItem(name=(name(i) if name else f"n{i}"), pid=start_pid + i,
                 site=site, switch=switch, link_spec=link_spec)
        for i in range(n_hosts))


@BLUEPRINTS.register(
    "ethernet", help="N workstations on one shared 10 Mbps Ethernet (§2)")
def blueprint_ethernet(n_hosts: int,
                       params: HostParams = SUN_ELC,
                       tcp_params=None,
                       seed: int = 1995,
                       trace: bool = False,
                       metrics: bool = True,
                       collisions: bool = False,
                       bandwidth_bps: float = 10e6,
                       preconnect: bool = True) -> TopologyBlueprint:
    """Blueprint twin of :func:`repro.net.topology.build_ethernet_cluster`."""
    if n_hosts < 1:
        raise ValueError("need at least one host")
    return TopologyBlueprint(
        medium="ethernet", seed=seed, trace=trace, metrics=metrics,
        params=params, tcp_params=tcp_params, train_cells=256,
        preconnect=preconnect, host_rail="ethernet", mesh="none",
        lan=LanItem(bandwidth_bps=bandwidth_bps, collisions=collisions),
        items=_host_items(n_hosts, None, None))


@BLUEPRINTS.register(
    "atm-lan", help="N workstations star-wired to a FORE switch (§2)")
def blueprint_atm_lan(n_hosts: int,
                      params: HostParams = SUN_IPX,
                      tcp_params=None,
                      seed: int = 1995,
                      trace: bool = False,
                      metrics: bool = True,
                      link_spec: LinkSpec = TAXI_140,
                      switch_latency_s: float = 10e-6,
                      train_cells: int = 256,
                      preconnect: bool = True) -> TopologyBlueprint:
    """Blueprint twin of :func:`repro.net.topology.build_atm_cluster`."""
    if n_hosts < 1:
        raise ValueError("need at least one host")
    items = ((SwitchItem("fore-sw", latency_s=switch_latency_s),)
             + _host_items(n_hosts, "fore-sw", link_spec))
    return TopologyBlueprint(
        medium="atm-lan", seed=seed, trace=trace, metrics=metrics,
        params=params, tcp_params=tcp_params, train_cells=train_cells,
        preconnect=preconnect, host_rail="atm", mesh="separate",
        items=items)


@BLUEPRINTS.register(
    "atm-dual",
    help="ATM fabric for HSM + separate Ethernet for NSM/TCP (dual-rail)")
def blueprint_atm_dual(n_hosts: int,
                       params: HostParams = SUN_IPX,
                       tcp_params=None,
                       seed: int = 1995,
                       trace: bool = False,
                       metrics: bool = True,
                       link_spec: LinkSpec = TAXI_140,
                       switch_latency_s: float = 10e-6,
                       train_cells: int = 256,
                       bandwidth_bps: float = 10e6,
                       collisions: bool = False,
                       preconnect: bool = True) -> TopologyBlueprint:
    """Blueprint twin of :func:`repro.net.topology.build_atm_dual_cluster`."""
    if n_hosts < 1:
        raise ValueError("need at least one host")
    items = ((SwitchItem("fore-sw", latency_s=switch_latency_s),)
             + _host_items(n_hosts, "fore-sw", link_spec))
    return TopologyBlueprint(
        medium="atm-dual", seed=seed, trace=trace, metrics=metrics,
        params=params, tcp_params=tcp_params, train_cells=train_cells,
        preconnect=preconnect, host_rail="dual", mesh="hsm-only",
        lan=LanItem(bandwidth_bps=bandwidth_bps, collisions=collisions),
        items=items)


def _blueprint_nynet_sites(sites, params, tcp_params, seed, trace, metrics,
                           train_cells, preconnect) -> TopologyBlueprint:
    """Shared body for the NYNET blueprints (Fig 1 shape)."""
    if not sites or all(s.n_hosts == 0 for s in sites):
        raise ValueError("need at least one site with hosts")
    if len({s.name for s in sites}) != len(sites):
        raise ValueError("site names must be unique")
    items: list[Any] = [
        SwitchItem("bb-upstate"), SwitchItem("bb-downstate"),
        TrunkItem("bb-upstate", "bb-downstate", DS3, cut_eligible=True),
    ]
    pid = 0
    for site in sites:
        swn = f"sw-{site.name}"
        backbone = ("bb-upstate" if site.region == "upstate"
                    else "bb-downstate")
        items.append(SwitchItem(swn, site=site.name))
        items.append(TrunkItem(swn, backbone, OC3, cut_eligible=True))
        for k in range(site.n_hosts):
            items.append(HostItem(name=f"{site.name}{k}", pid=pid,
                                  site=site.name, switch=swn,
                                  link_spec=TAXI_140))
            pid += 1
    return TopologyBlueprint(
        medium="nynet", seed=seed, trace=trace, metrics=metrics,
        params=params, tcp_params=tcp_params, train_cells=train_cells,
        preconnect=preconnect, host_rail="atm", mesh="interleaved",
        items=tuple(items))


@BLUEPRINTS.register(
    "nynet-testbed",
    help="Two-region NYNET: upstate + downstate sites over the DS-3 (Fig 1)")
def blueprint_nynet_testbed(n_upstate: int = 4, n_downstate: int = 2,
                            **kw) -> TopologyBlueprint:
    """Blueprint twin of :func:`repro.net.nynet.nynet_testbed`."""
    from .nynet import SiteSpec
    return blueprint_nynet([
        SiteSpec("syr", n_upstate, "upstate"),
        SiteSpec("nyc", n_downstate, "downstate"),
    ], **kw)


@BLUEPRINTS.register(
    "nynet", help="The Fig 1 NYNET WAN from declarative site tables")
def blueprint_nynet(sites: list,
                    params: HostParams = SUN_IPX,
                    tcp_params=None,
                    seed: int = 1995,
                    trace: bool = False,
                    metrics: bool = True,
                    train_cells: int = 256,
                    preconnect: bool = True) -> TopologyBlueprint:
    """Blueprint twin of :func:`repro.net.nynet.build_nynet_from_spec`."""
    from .nynet import SiteSpec
    site_specs = []
    for i, site in enumerate(sites):
        if isinstance(site, SiteSpec):
            site_specs.append(site)
        elif isinstance(site, dict):
            try:
                site_specs.append(SiteSpec(**site))
            except TypeError as e:
                raise ValueError(
                    f"cluster.options.sites[{i}]: {e}; expected keys "
                    "name, n_hosts, region") from None
        else:
            raise ValueError(
                f"cluster.options.sites[{i}]: expected a table, "
                f"got {site!r}")
    return _blueprint_nynet_sites(site_specs, params, tcp_params, seed,
                                  trace, metrics, train_cells, preconnect)


@BLUEPRINTS.register(
    "wan-ring",
    help="N site switches in a DS-3 ring, one shardable site per switch")
def blueprint_wan_ring(n_sites: int = 8,
                       hosts_per_site: int = 1,
                       params: HostParams = SUN_IPX,
                       tcp_params=None,
                       seed: int = 1995,
                       trace: bool = False,
                       metrics: bool = True,
                       train_cells: int = 256,
                       preconnect: bool = True) -> TopologyBlueprint:
    """Blueprint twin of :func:`repro.net.nynet.build_wan_ring`."""
    if n_sites < 1:
        raise ValueError("n_sites must be >= 1")
    if hosts_per_site < 1:
        raise ValueError("hosts_per_site must be >= 1")
    items: list[Any] = [SwitchItem(f"sw-r{i}", site=f"r{i}")
                        for i in range(n_sites)]
    if n_sites == 2:            # a 2-ring would double the single trunk
        items.append(TrunkItem("sw-r0", "sw-r1", DS3, cut_eligible=True))
    elif n_sites > 2:
        for i in range(n_sites):
            items.append(TrunkItem(f"sw-r{i}", f"sw-r{(i + 1) % n_sites}",
                                   DS3, cut_eligible=True))
    pid = 0
    for i in range(n_sites):
        for k in range(hosts_per_site):
            items.append(HostItem(name=f"r{i}h{k}", pid=pid, site=f"r{i}",
                                  switch=f"sw-r{i}", link_spec=TAXI_140))
            pid += 1
    return TopologyBlueprint(
        medium="wan-ring", seed=seed, trace=trace, metrics=metrics,
        params=params, tcp_params=tcp_params, train_cells=train_cells,
        preconnect=preconnect, host_rail="atm", mesh="interleaved",
        items=tuple(items))
