"""Cluster builders: wire hosts, NICs, protocol stacks and fabrics.

Two build-outs mirror the paper's experimental environment (§2):

* :func:`build_ethernet_cluster` — SPARCstation ELCs on one shared
  10 Mbps Ethernet (the *SUN/Ethernet* platform).
* :func:`build_atm_cluster` — SPARCstation IPXs star-wired to a FORE
  switch over 140 Mbps TAXI (the *SUN/ATM LAN* platform), with both a
  classical-IP PVC mesh (for TCP/p4/NSM traffic) and a raw PVC mesh
  (for NCS High Speed Mode).

The NYNET wide-area testbed of Fig 1 is in :mod:`repro.net.nynet`.

Since the blueprint refactor, the registered builders here are thin
wrappers: each delegates to its declarative twin in
:mod:`repro.net.blueprint` and materializes the result — the same
two-phase path the sharded kernel uses for partial (per-shard)
construction, held to byte identity against the old imperative bodies
by the perf-lock and determinism goldens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..atm import (
    AtmApi, AtmFabric, AtmSwitch, LinkSpec, Sba200Adapter,
    SignalingController, TAXI_140, VirtualChannel,
)
from ..ethernet import EthernetLan, EthernetNic
from ..hosts import Host, HostParams, OsProcess, SUN_ELC, SUN_IPX
from ..obs.registry import MetricsRegistry, NULL_REGISTRY
from ..protocols import (
    AtmIpAdapter, EthernetIpAdapter, IpLayer, SocketLayer, TcpParams,
    TcpStack, UdpStack,
)
from ..registry import TOPOLOGIES
from ..sim import NullTracer, RngRegistry, Simulator, Tracer
from .blueprint import (
    blueprint_atm_dual, blueprint_atm_lan, blueprint_ethernet, materialize,
)

__all__ = ["NodeStack", "Cluster", "build_ethernet_cluster",
           "build_atm_cluster", "build_atm_dual_cluster"]


@dataclass
class NodeStack:
    """Everything attached to one host."""

    host: Host
    process: OsProcess
    ip: IpLayer
    tcp: TcpStack
    socket: SocketLayer
    udp: UdpStack
    atm_api: Optional[AtmApi] = None


@dataclass
class Cluster:
    """A built simulation universe: N hosts plus their interconnect."""

    sim: Simulator
    rngs: RngRegistry
    tracer: Tracer
    stacks: list[NodeStack]
    medium: str                                   # "ethernet" | "atm-lan" | ...
    lan: Optional[EthernetLan] = None
    fabric: Optional[AtmFabric] = None
    signaling: Optional[SignalingController] = None
    #: raw PVCs for NCS HSM traffic: (src_idx, dst_idx) -> VC
    hsm_vcs: dict[tuple[int, int], VirtualChannel] = field(default_factory=dict)

    @property
    def n_hosts(self) -> int:
        return len(self.stacks)

    @property
    def metrics(self) -> MetricsRegistry:
        """The universe's telemetry registry (lives on the simulator)."""
        return self.sim.metrics

    def stack(self, idx: int) -> NodeStack:
        return self.stacks[idx]

    def host(self, idx: int) -> Host:
        return self.stacks[idx].host

    def process(self, pid: int) -> OsProcess:
        return self.stacks[pid].process

    def hsm_vc(self, src: int, dst: int) -> VirtualChannel:
        try:
            return self.hsm_vcs[(src, dst)]
        except KeyError:
            raise KeyError(
                f"no HSM VC {src}->{dst}; is this an ATM cluster?") from None

    def preestablish_tcp_mesh(self) -> None:
        """Mark every pairwise TCP connection established, modelling the
        connection setup p4 performs during ``p4_create_procgroup`` —
        which the paper's timed regions exclude."""
        n = self.n_hosts
        for i in range(n):
            for j in range(n):
                if i != j:
                    conn = self.stacks[i].tcp.connection(self.host(j).name)
                    conn.established = True


def _host_name(i: int) -> str:
    return f"n{i}"


@TOPOLOGIES.register(
    "ethernet", help="N workstations on one shared 10 Mbps Ethernet (§2)")
def build_ethernet_cluster(
        n_hosts: int,
        params: HostParams = SUN_ELC,
        tcp_params: Optional[TcpParams] = None,
        seed: int = 1995,
        trace: bool = False,
        metrics: bool = True,
        collisions: bool = False,
        bandwidth_bps: float = 10e6,
        preconnect: bool = True) -> Cluster:
    """N workstations on one shared Ethernet segment."""
    return materialize(blueprint_ethernet(
        n_hosts, params=params, tcp_params=tcp_params, seed=seed,
        trace=trace, metrics=metrics, collisions=collisions,
        bandwidth_bps=bandwidth_bps, preconnect=preconnect))


@TOPOLOGIES.register(
    "atm-lan", help="N workstations star-wired to a FORE switch (§2)")
def build_atm_cluster(
        n_hosts: int,
        params: HostParams = SUN_IPX,
        tcp_params: Optional[TcpParams] = None,
        seed: int = 1995,
        trace: bool = False,
        metrics: bool = True,
        link_spec: LinkSpec = TAXI_140,
        switch_latency_s: float = 10e-6,
        train_cells: int = 256,
        preconnect: bool = True) -> Cluster:
    """N workstations star-wired to one FORE switch over TAXI links."""
    return materialize(blueprint_atm_lan(
        n_hosts, params=params, tcp_params=tcp_params, seed=seed,
        trace=trace, metrics=metrics, link_spec=link_spec,
        switch_latency_s=switch_latency_s, train_cells=train_cells,
        preconnect=preconnect))


@TOPOLOGIES.register(
    "atm-dual",
    help="ATM fabric for HSM + separate Ethernet for NSM/TCP (dual-rail)")
def build_atm_dual_cluster(
        n_hosts: int,
        params: HostParams = SUN_IPX,
        tcp_params: Optional[TcpParams] = None,
        seed: int = 1995,
        trace: bool = False,
        metrics: bool = True,
        link_spec: LinkSpec = TAXI_140,
        switch_latency_s: float = 10e-6,
        train_cells: int = 256,
        bandwidth_bps: float = 10e6,
        collisions: bool = False,
        preconnect: bool = True) -> Cluster:
    """Dual-rail cluster: every host has an SBA-200 on the ATM star *and*
    an Ethernet NIC on a shared segment.

    Unlike :func:`build_atm_cluster` — where classical-IP and the raw
    HSM PVCs share the same TAXI links, so a link outage kills both
    service tiers at once — here IP/TCP (and with it NSM and p4) runs
    over the Ethernet while only HSM uses the fabric.  This is the
    topology that makes HSM→NSM failover meaningful: the fast path can
    die while the slow path survives.  (The paper's own testbed kept
    its Ethernet alongside the ATM gear for exactly this kind of
    fallback.)
    """
    return materialize(blueprint_atm_dual(
        n_hosts, params=params, tcp_params=tcp_params, seed=seed,
        trace=trace, metrics=metrics, link_spec=link_spec,
        switch_latency_s=switch_latency_s, train_cells=train_cells,
        bandwidth_bps=bandwidth_bps, collisions=collisions,
        preconnect=preconnect))
