"""Topology builders: Ethernet cluster, ATM LAN cluster, NYNET WAN."""

from .nynet import SiteSpec, build_nynet, nynet_testbed
from .topology import Cluster, NodeStack, build_atm_cluster, build_ethernet_cluster

__all__ = [
    "Cluster", "NodeStack", "build_atm_cluster", "build_ethernet_cluster",
    "SiteSpec", "build_nynet", "nynet_testbed",
]
