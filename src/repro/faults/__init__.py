"""repro.faults — deterministic fault injection for the NCS simulation.

Declare *what* goes wrong and *when* with a :class:`FaultPlan`, then arm
it against a built cluster with a :class:`FaultInjector`::

    from repro import NcsRuntime, ServiceMode, build_atm_cluster
    from repro.faults import FaultInjector, FaultPlan, LinkOutage

    cluster = build_atm_cluster(4, trace=True)
    rt = NcsRuntime(cluster, mode=ServiceMode.HSM, error="ack")
    plan = FaultPlan((LinkOutage(at=0.002, duration=0.01, host=2),))
    FaultInjector(cluster, plan, runtime=rt).arm()
    ...                      # create threads as usual
    rt.run()                 # error control retransmits across the outage

Everything is seed-reproducible: the same cluster seed, plan and
workload give a bit-identical event trace (:func:`trace_signature`),
which the chaos suite in ``tests/faults`` asserts across all three
service modes.
"""

from .injector import FaultInjector, trace_signature
from .plan import (
    BerSpike, FaultEvent, FaultPlan, HostCrash, LinkOutage, MessageLoss,
    Partition, SwitchPortStall, WorkerCrash, WorkerFault, WorkerStall,
)

__all__ = [
    "FaultInjector", "trace_signature",
    "BerSpike", "FaultEvent", "FaultPlan", "HostCrash", "LinkOutage",
    "MessageLoss", "Partition", "SwitchPortStall",
    "WorkerCrash", "WorkerFault", "WorkerStall",
]
