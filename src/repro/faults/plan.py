"""Fault plans: declarative, seed-reproducible failure schedules.

A :class:`FaultPlan` is an immutable, time-sorted list of fault events —
link outages, BER spikes, host crashes, switch-port stalls, network
partitions, message-level loss — that a
:class:`~repro.faults.injector.FaultInjector` arms against a built
cluster.  Plans are pure data: the same plan armed against the same
seeded cluster produces a bit-identical simulation, which is what lets
the chaos suite assert determinism across service modes and repeats.

Every event has an absolute start time ``at`` (simulated seconds) and a
``duration``; ``duration=None`` means the fault is permanent (never
heals), which is how the partition-raises-``MessageLost`` scenarios are
written.

:meth:`FaultPlan.random` draws a reproducible random plan from a seed —
the generator behind the chaos sweep tests.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..registry import FAULT_KINDS

__all__ = [
    "FaultEvent", "LinkOutage", "BerSpike", "HostCrash", "SwitchPortStall",
    "Partition", "MessageLoss", "WorkerFault", "WorkerCrash", "WorkerStall",
    "FaultPlan",
]


@dataclass(frozen=True)
class FaultEvent:
    """Base class: one scheduled fault.

    ``at`` is the injection time; ``duration`` the healing delay after
    ``at`` (``None`` = permanent).
    """

    at: float
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("fault time must be non-negative")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("fault duration must be positive (or None)")

    @property
    def ends_at(self) -> Optional[float]:
        return None if self.duration is None else self.at + self.duration

    @property
    def permanent(self) -> bool:
        return self.duration is None

    #: registered kind name, filled in by ``@FAULT_KINDS.register``
    kind = "fault"

    def _span(self) -> str:
        if self.permanent:
            return f"@{self.at:g}s permanent"
        return f"@{self.at:g}s for {self.duration:g}s"

    def describe(self) -> str:  # pragma: no cover - overridden
        return f"fault {self._span()}"

    def to_dict(self) -> dict:
        """Declarative form: ``{"kind": ..., "at": ..., ...}``.

        ``duration`` is omitted when permanent and tuple fields become
        lists, so the result serializes to TOML/JSON as-is and
        round-trips through :meth:`from_dict`.
        """
        d: dict = {"kind": self.kind, "at": self.at}
        if self.duration is not None:
            d["duration"] = self.duration
        for f in dataclasses.fields(self):
            if f.name in ("at", "duration"):
                continue
            value = getattr(self, f.name)
            if value is None:
                continue
            if isinstance(value, tuple):
                value = [list(v) if isinstance(v, tuple) else v
                         for v in value]
            d[f.name] = value
        return d

    @staticmethod
    def from_dict(raw: dict) -> "FaultEvent":
        """Build the registered event class from its declarative form."""
        raw = dict(raw)
        try:
            kind = raw.pop("kind")
        except KeyError:
            raise ValueError(
                f"fault event {raw!r} has no 'kind' key; registered "
                f"kinds: {', '.join(FAULT_KINDS.names())}") from None
        cls = FAULT_KINDS.get(kind)
        allowed = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(raw) - allowed)
        if unknown:
            raise ValueError(
                f"fault kind {kind!r} does not accept "
                f"{', '.join(map(repr, unknown))}; fields: "
                f"{', '.join(sorted(allowed))}")
        for key, value in raw.items():
            if isinstance(value, list):
                raw[key] = tuple(tuple(v) if isinstance(v, list) else v
                                 for v in value)
        return cls(**raw)


def _register_kind(name: str):
    """Register a fault-event class and stamp its ``kind`` name."""
    def decorator(cls):
        cls.kind = name
        return FAULT_KINDS.register(name, cls)
    return decorator


@_register_kind("link-outage")
@dataclass(frozen=True)
class LinkOutage(FaultEvent):
    """The host's physical link goes dark in both directions.

    On an ATM cluster this fails the host↔switch duplex TAXI link (every
    burst in the window reassembles corrupted, like a pulled fiber); on
    an Ethernet cluster it fails the host's NIC.

    ``scope`` narrows which rail dies on a dual-rail (``atm-dual``)
    host: ``"all"`` (default) fails both the ATM uplink and the
    Ethernet NIC, ``"atm"`` pulls only the fiber to the switch,
    ``"nic"`` only the Ethernet drop.  ``scope="atm"`` is the scenario
    behind HSM→NSM failover — the fast path dies while TCP survives.
    """

    host: int = 0
    scope: str = "all"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.scope not in ("all", "atm", "nic"):
            raise ValueError(
                f"link-outage scope must be 'all', 'atm' or 'nic'; "
                f"got {self.scope!r}")

    def to_dict(self) -> dict:
        d = super().to_dict()
        if d.get("scope") == "all":   # keep pre-scope serializations stable
            del d["scope"]
        return d

    def describe(self) -> str:
        which = "" if self.scope == "all" else f", scope={self.scope}"
        return f"link-outage(host={self.host}{which}) {self._span()}"


@_register_kind("ber-spike")
@dataclass(frozen=True)
class BerSpike(FaultEvent):
    """Transient bit-error-rate spike.

    On an ATM cluster the spike applies to ``host``'s TAXI link (both
    directions); on an Ethernet cluster it applies to the shared segment
    (``host`` is ignored — there is only one medium).
    """

    host: int = 0
    ber: float = 1e-6

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (0.0 <= self.ber < 1.0):
            raise ValueError("bit error rate must be in [0, 1)")

    def describe(self) -> str:
        return f"ber-spike(host={self.host}, ber={self.ber:g}) {self._span()}"


@_register_kind("host-crash")
@dataclass(frozen=True)
class HostCrash(FaultEvent):
    """Fail-stop host crash with later restart.

    The host's CPU freezes at the next quantum boundary and its network
    interfaces go deaf; on restart everything resumes where it stalled
    (state survives — the paper-era 'reboot and rejoin' model, which is
    what lets applications recover without an application-level
    checkpoint protocol).
    """

    host: int = 0

    def describe(self) -> str:
        return f"host-crash(host={self.host}) {self._span()}"


@_register_kind("switch-port-stall")
@dataclass(frozen=True)
class SwitchPortStall(FaultEvent):
    """The switch output port feeding ``host`` wedges: cells queue but
    none drain until the stall clears (head-of-line blocking, not loss).
    ATM clusters only."""

    host: int = 0

    def describe(self) -> str:
        return f"switch-port-stall(host={self.host}) {self._span()}"


@_register_kind("partition")
@dataclass(frozen=True)
class Partition(FaultEvent):
    """Network partition: processes in different groups cannot exchange
    NCS messages until the partition heals.

    ``groups`` are disjoint tuples of process indices.  Hosts absent
    from every group are unaffected.  The filter sits at the NCS message
    arrival point, so the behaviour is identical — and bounded — under
    all three service modes: error control retransmits across the
    outage and, for a permanent partition, gives up and raises
    :class:`~repro.core.mps.error_control.MessageLost` instead of
    letting the application hang.
    """

    groups: tuple[tuple[int, ...], ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.groups) < 2:
            raise ValueError("a partition needs at least two groups")
        seen: set[int] = set()
        for g in self.groups:
            for pid in g:
                if pid in seen:
                    raise ValueError(
                        f"process {pid} appears in two partition groups")
                seen.add(pid)

    def describe(self) -> str:
        groups = "|".join(",".join(str(p) for p in g) for g in self.groups)
        return f"partition({groups}) {self._span()}"


@_register_kind("message-loss")
@dataclass(frozen=True)
class MessageLoss(FaultEvent):
    """Message-level loss: each NCS message arriving at an affected
    process is independently discarded with probability ``p`` (drawn
    from a dedicated per-process RNG stream, so arming the fault never
    perturbs any other random draw in the simulation).

    ``pids=None`` affects every process.  This is the workhorse of the
    error-control tests: with ``error='ack'`` the EC thread retransmits
    through the loss; with ``p=1.0`` and a permanent window the loss is
    unrecoverable and surfaces as ``MessageLost``.
    """

    p: float = 0.1
    pids: Optional[tuple[int, ...]] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (0.0 < self.p <= 1.0):
            raise ValueError("loss probability must be in (0, 1]")

    def describe(self) -> str:
        who = "all" if self.pids is None else ",".join(map(str, self.pids))
        return f"message-loss(p={self.p:g}, pids={who}) {self._span()}"


@dataclass(frozen=True)
class WorkerFault(FaultEvent):
    """Base class: a *kernel-infrastructure* fault on a shard worker.

    Unlike every other fault kind, these do not perturb the simulated
    cluster at all — they kill or wedge the **execution substrate**
    (the sharded kernel's worker process/thread for shard ``shard``)
    so the supervision layer itself can sit under the chaos suite.
    They are therefore invisible to the single kernel and to the
    :class:`~repro.faults.injector.FaultInjector` (``build_fault_plan``
    strips them before arming), which is exactly what makes a recovered
    run byte-identical to the unsharded one.

    Triggering is deterministic: the fault fires when worker ``shard``
    is about to report for coordinator window ``window`` (1-based
    round counter) of sharded launch attempt ``attempt`` (0 = the
    first launch, so a retried run is clean by default — the
    transient-flake model).  ``at`` is carried only to satisfy the
    event schema; worker faults key on the window counter, not
    simulated time.
    """

    at: float = 0.0
    shard: int = 0
    window: int = 1
    attempt: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not isinstance(self.shard, int) or self.shard < 0:
            raise ValueError(
                f"worker fault shard must be a non-negative shard index "
                f"(got {self.shard!r})")
        if not isinstance(self.window, int) or self.window < 1:
            raise ValueError(
                f"worker fault window must be a positive window number "
                f"(got {self.window!r})")
        if not isinstance(self.attempt, int) or self.attempt < 0:
            raise ValueError(
                f"worker fault attempt must be a non-negative launch "
                f"attempt (got {self.attempt!r})")

    def matches(self, shard: int, window: int, attempt: int) -> bool:
        """Whether this fault fires for ``shard`` at ``window`` of
        launch ``attempt``."""
        return (self.shard == shard and self.window == window
                and self.attempt == attempt)

    def to_dict(self) -> dict:
        d = super().to_dict()
        # canonical form: drop schema-filler and per-field defaults so
        # checked-in scenarios stay minimal and round-trip stably
        if d.get("at") == 0.0:
            del d["at"]
        if d.get("attempt") == 0:
            del d["attempt"]
        return d


@_register_kind("worker-crash")
@dataclass(frozen=True)
class WorkerCrash(WorkerFault):
    """Kill shard ``shard``'s worker dead at window ``window``: the
    process exits without a word (``os._exit``), the thread returns
    without reporting.  The coordinator sees silence + a dead worker
    and classifies the failure as ``crashed``."""

    def describe(self) -> str:
        return (f"worker-crash(shard={self.shard}, window={self.window}, "
                f"attempt={self.attempt})")


@_register_kind("worker-stall")
@dataclass(frozen=True)
class WorkerStall(WorkerFault):
    """Wedge shard ``shard``'s worker for ``stall_s`` wall-clock
    seconds at window ``window`` — long enough (when ``stall_s``
    exceeds the supervision barrier deadline) for the coordinator to
    classify the worker as ``hung`` and recover without it."""

    stall_s: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not isinstance(self.stall_s, (int, float)) or self.stall_s <= 0:
            raise ValueError(
                f"worker stall duration must be a positive number of "
                f"wall-clock seconds (got {self.stall_s!r})")

    def describe(self) -> str:
        return (f"worker-stall(shard={self.shard}, window={self.window}, "
                f"attempt={self.attempt}, stall_s={self.stall_s:g})")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of fault events, sorted by injection time."""

    events: tuple[FaultEvent, ...] = ()
    #: free-form provenance (e.g. the seed that generated a random plan)
    label: str = ""

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: e.at))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def permanent_events(self) -> tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.permanent)

    @property
    def worker_events(self) -> tuple[WorkerFault, ...]:
        """Kernel-infrastructure faults (consumed by the sharded
        kernel's supervision layer, never armed against the cluster)."""
        return tuple(e for e in self.events if isinstance(e, WorkerFault))

    def cluster_plan(self) -> "FaultPlan":
        """This plan minus worker faults — what the injector may arm."""
        events = tuple(e for e in self.events
                       if not isinstance(e, WorkerFault))
        if len(events) == len(self.events):
            return self
        return FaultPlan(events, label=self.label)

    def describe(self) -> str:
        """One line per event — stable text used in logs and EXPERIMENTS."""
        head = f"FaultPlan({self.label or 'unnamed'}, {len(self.events)} events)"
        return "\n".join([head] + [f"  {e.describe()}" for e in self.events])

    # ------------------------------------------------- declarative form
    def to_dicts(self) -> list[dict]:
        """The plan as plain event tables (the scenario-file form)."""
        return [e.to_dict() for e in self.events]

    @staticmethod
    def from_dicts(events: Sequence[dict], label: str = "") -> "FaultPlan":
        """Rebuild a plan from event tables; inverse of :meth:`to_dicts`.

        Each table names its registered ``kind`` plus the event's
        fields — unknown kinds and unknown fields fail with the list
        of alternatives.
        """
        return FaultPlan(tuple(FaultEvent.from_dict(e) for e in events),
                         label=label)

    @staticmethod
    def random(seed: int, n_hosts: int, t_max: float = 0.5,
               n_events: int = 4,
               kinds: Sequence[str] = ("link", "ber", "crash", "stall",
                                       "msgloss")) -> "FaultPlan":
        """Draw a reproducible transient-fault plan.

        All generated faults are transient (bounded duration), so a
        run under error control is expected to *recover*; permanent
        scenarios are written explicitly.  The same ``(seed, n_hosts,
        t_max, n_events, kinds)`` always yields the same plan.
        """
        if n_hosts < 1:
            raise ValueError("need at least one host")
        if not kinds:
            raise ValueError("need at least one fault kind")
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        for _ in range(n_events):
            kind = kinds[int(rng.integers(0, len(kinds)))]
            at = float(rng.uniform(0.0, t_max * 0.6))
            duration = float(rng.uniform(t_max * 0.02, t_max * 0.25))
            host = int(rng.integers(0, n_hosts))
            if kind == "link":
                events.append(LinkOutage(at, duration, host=host))
            elif kind == "ber":
                ber = float(10.0 ** rng.uniform(-7.0, -4.5))
                events.append(BerSpike(at, duration, host=host, ber=ber))
            elif kind == "crash":
                events.append(HostCrash(at, duration, host=host))
            elif kind == "stall":
                events.append(SwitchPortStall(at, duration, host=host))
            elif kind == "msgloss":
                p = float(rng.uniform(0.05, 0.4))
                events.append(MessageLoss(at, duration, p=p))
            else:
                raise ValueError(f"unknown fault kind {kind!r}")
        return FaultPlan(tuple(events), label=f"random(seed={seed})")
