"""The fault injector: arms a :class:`~repro.faults.plan.FaultPlan`
against a built cluster.

The injector schedules every event's begin (and, for transient faults,
its heal) on the simulation calendar via ``sim.call_at``, flips the
fault hooks the network/host layers expose (``Channel.fail``,
``Host.freeze``, ``AtmSwitch.stall_port``, ``NcsMps.rx_fault``, ...),
and records what it did in three places:

* ``injector.log`` — a deterministic ``(t, edge, description)`` list;
* the cluster tracer — one ``Activity.FAULT`` interval per event (entity
  ``fault:<index>``), so fault windows land on the same timelines as
  the compute/communicate intervals of Fig 16;
* the layers' own counters (``bursts_faulted``, ``frames_dropped``,
  ``messages_faulted``) keep counting as usual.

Message-level faults (:class:`Partition`, :class:`MessageLoss`) filter
at the NCS arrival point and therefore need the :class:`NcsRuntime`;
physical faults work on a bare cluster.  All randomness comes from
dedicated per-process streams of the cluster's seeded registry
(``faults.msgloss.<pid>``), so arming a plan never perturbs any other
draw — the foundation of the bit-identical-trace guarantee.
"""

from __future__ import annotations

import hashlib
from typing import Any, Optional

from ..atm.link import DuplexLink
from ..net.topology import Cluster
from ..sim import Activity, Tracer
from .plan import (
    BerSpike, FaultEvent, FaultPlan, HostCrash, LinkOutage, MessageLoss,
    Partition, SwitchPortStall,
)

__all__ = ["FaultInjector", "trace_signature"]


class FaultInjector:
    """Arms a fault plan against one cluster (and optionally a runtime)."""

    def __init__(self, cluster: Cluster, plan: FaultPlan,
                 runtime: Optional[Any] = None):
        self.cluster = cluster
        self.plan = plan
        self.runtime = runtime
        self.sim = cluster.sim
        self.tracer = cluster.tracer
        #: deterministic injection log: (time, "begin"|"end", description)
        self.log: list[tuple[float, str, str]] = []
        #: currently active partitions (each a tuple of groups)
        self._partitions: list[tuple[tuple[int, ...], ...]] = []
        #: currently active message-loss events
        self._msgloss: list[MessageLoss] = []
        self._armed = False
        # telemetry handles (no-ops when the registry is disabled)
        _m = self.sim.metrics
        self._m_begun = _m.counter(
            "faults.events_begun", help="fault events that have started")
        self._m_healed = _m.counter(
            "faults.events_healed", help="transient fault events that ended")

    # ------------------------------------------------------------------ arm
    def arm(self) -> "FaultInjector":
        """Validate the plan and put every event on the calendar."""
        if self._armed:
            raise RuntimeError("fault plan already armed")
        needs_runtime = any(isinstance(e, (Partition, MessageLoss))
                            for e in self.plan)
        if needs_runtime and self.runtime is None:
            raise ValueError(
                "this plan contains message-level faults (Partition/"
                "MessageLoss); pass the NcsRuntime to FaultInjector")
        for ev in self.plan:
            self._validate(ev)
        if needs_runtime:
            self._install_mps_filters()
        for i, ev in enumerate(self.plan):
            self.sim.call_at(ev.at, lambda ev=ev, i=i: self._begin(ev, i))
            if ev.ends_at is not None:
                self.sim.call_at(ev.ends_at,
                                 lambda ev=ev, i=i: self._end(ev, i))
        self._armed = True
        return self

    def _validate(self, ev: FaultEvent) -> None:
        n = self.cluster.n_hosts
        host = getattr(ev, "host", None)
        if host is not None and not (0 <= host < n):
            raise ValueError(f"{ev.describe()}: no such host {host}")
        if isinstance(ev, Partition):
            for g in ev.groups:
                for pid in g:
                    if not (0 <= pid < n):
                        raise ValueError(
                            f"{ev.describe()}: no such process {pid}")
        if isinstance(ev, MessageLoss) and ev.pids is not None:
            for pid in ev.pids:
                if not (0 <= pid < n):
                    raise ValueError(f"{ev.describe()}: no such process {pid}")
        if isinstance(ev, SwitchPortStall) and self.cluster.fabric is None:
            raise ValueError("switch-port stalls need an ATM cluster")

    # ------------------------------------------------------- event dispatch
    def _record(self, edge: str, ev: FaultEvent, index: int) -> None:
        self.log.append((self.sim.now, edge, ev.describe()))
        entity = f"fault:{index}"
        if edge == "begin":
            self._m_begun.inc()
            self.tracer.begin(entity, Activity.FAULT, ev.describe())
        else:
            self._m_healed.inc()
            self.tracer.end(entity)

    def _begin(self, ev: FaultEvent, index: int) -> None:
        self._record("begin", ev, index)
        if isinstance(ev, LinkOutage):
            if ev.scope in ("all", "atm"):
                self._for_links(ev.host, lambda link: link.fail())
            if ev.scope in ("all", "nic"):
                nic = self._nic(ev.host)
                if nic is not None:
                    nic.fail()
        elif isinstance(ev, BerSpike):
            if self.cluster.fabric is not None:
                def spike(link, ber=ev.ber):
                    link.fwd.ber_override = ber
                    link.rev.ber_override = ber
                self._for_links(ev.host, spike)
            if self.cluster.lan is not None:
                self.cluster.lan.set_fault_ber(ev.ber)
        elif isinstance(ev, HostCrash):
            host = self.cluster.host(ev.host)
            host.freeze()
            for iface in host.interfaces.values():
                iface.fail()
        elif isinstance(ev, SwitchPortStall):
            switch, channel = self._switch_port(ev.host)
            switch.stall_port(channel)
        elif isinstance(ev, Partition):
            self._partitions.append(ev.groups)
        elif isinstance(ev, MessageLoss):
            self._msgloss.append(ev)
        else:  # pragma: no cover - plan types are closed
            raise TypeError(f"unknown fault event {ev!r}")

    def _end(self, ev: FaultEvent, index: int) -> None:
        self._record("end", ev, index)
        if isinstance(ev, LinkOutage):
            if ev.scope in ("all", "atm"):
                self._for_links(ev.host, lambda link: link.restore())
            if ev.scope in ("all", "nic"):
                nic = self._nic(ev.host)
                if nic is not None:
                    nic.restore()
        elif isinstance(ev, BerSpike):
            if self.cluster.fabric is not None:
                def clear(link):
                    link.fwd.ber_override = None
                    link.rev.ber_override = None
                self._for_links(ev.host, clear)
            if self.cluster.lan is not None:
                self.cluster.lan.clear_fault_ber()
        elif isinstance(ev, HostCrash):
            host = self.cluster.host(ev.host)
            for iface in host.interfaces.values():
                iface.restore()
            host.unfreeze()
        elif isinstance(ev, SwitchPortStall):
            switch, channel = self._switch_port(ev.host)
            switch.unstall_port(channel)
        elif isinstance(ev, Partition):
            self._partitions.remove(ev.groups)
        elif isinstance(ev, MessageLoss):
            self._msgloss.remove(ev)

    # -------------------------------------------------------- fabric lookup
    def _for_links(self, host_idx: int, fn) -> None:
        """Apply ``fn`` to every duplex link attached to the host's ATM
        adapter (on the star topology, exactly the host↔switch TAXI)."""
        fabric = self.cluster.fabric
        if fabric is None:
            return
        adapter = fabric.adapters[self.cluster.host(host_idx).name]
        for _, _, data in fabric.graph.edges(adapter, data=True):
            link: DuplexLink = data["link"]
            fn(link)

    def _nic(self, host_idx: int):
        return self.cluster.host(host_idx).interfaces.get("ethernet")

    def _switch_port(self, host_idx: int):
        """The switch output channel feeding ``host`` (endpoint = its
        adapter)."""
        fabric = self.cluster.fabric
        assert fabric is not None
        adapter = fabric.adapters[self.cluster.host(host_idx).name]
        for _, other, data in fabric.graph.edges(adapter, data=True):
            link: DuplexLink = data["link"]
            for channel in (link.fwd, link.rev):
                if channel.endpoint is adapter:
                    return other, channel
        raise ValueError(f"host {host_idx} has no switch uplink")

    # -------------------------------------------------- message-level hooks
    def _install_mps_filters(self) -> None:
        for node in self.runtime.nodes:
            if node.mps.rx_fault is not None:
                raise RuntimeError(
                    f"process {node.pid} already has an rx_fault filter")
            rng = self.cluster.rngs.stream(f"faults.msgloss.{node.pid}")
            node.mps.rx_fault = self._make_filter(node.pid, rng)

    def _make_filter(self, pid: int, rng):
        def rx_fault(msg) -> bool:
            if self._blocked(msg.from_process, pid):
                return True
            for ev in self._msgloss:
                if ((ev.pids is None or pid in ev.pids)
                        and rng.random() < ev.p):
                    return True
            return False
        return rx_fault

    def _blocked(self, src: int, dst: int) -> bool:
        """True while an active partition separates the two processes."""
        for groups in self._partitions:
            src_g = next((g for g in groups if src in g), None)
            dst_g = next((g for g in groups if dst in g), None)
            if src_g is not None and dst_g is not None and src_g is not dst_g:
                return True
        return False


def trace_signature(tracer: Tracer) -> str:
    """A stable digest of everything a run's tracer recorded.

    Two runs with the same seed, plan and workload must produce the
    same signature — the chaos suite's bit-identical-trace assertion.
    Intervals still open (an unhealed permanent fault) are hashed as
    open, so closing order cannot mask a divergence.
    """
    h = hashlib.sha256()
    for t, entity, kind, payload in tracer.events:
        h.update(repr((t, entity, kind, payload)).encode())
    for name in sorted(tracer.timelines):
        tl = tracer.timelines[name]
        h.update(repr((name, tl.gantt_row(),
                       tl._open_start, tl._open_activity)).encode())
    return h.hexdigest()
