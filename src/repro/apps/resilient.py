"""Resilient matrix multiply: coordinator-tracked work reassignment.

The paper's Fig 14 matmul assumes every node survives the run.  This
variant is the self-healing counterpart: the coordinator (process 0)
splits the A rows into more *work units* than there are workers, tracks
which unit is outstanding where, and — when the failure detector
(:mod:`repro.resilience`) declares a worker DEAD — redistributes that
worker's unfinished units across the survivors.  The answer is still
checked bit-for-bit against ``A @ B``: a crash costs time, never
correctness.

Protocol (all NCS messages, coordinator = process 0):

* ``B_TAG``    — the shared B matrix, sent to every worker first;
* ``UNIT_TAG`` — one work unit ``(unit_id, row_slice, A_block)``;
* ``RES_TAG``  — a finished block ``(unit_id, row_slice, C_block)``;
* ``STOP_TAG`` — shut a worker down (sent to dead workers too; the
  runtime forgives undeliverable mail to a frozen host).

The coordinator polls its receives (``poll_s``) instead of blocking
forever, and on every timeout consults its detector view.  Reassignment
only happens while the coordinator is *in quorum* — on the minority
side of a partition it waits rather than double-assigning units that
the majority side may also be reassigning.  Duplicate results (a unit
finished by both its original owner and a reassignee, e.g. after a
healed partition rejoins) are deduplicated by unit id.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..core.mps.error_control import MessageLost
from ..core.mps.exceptions import RecvTimeout
from .matmul import ELEMENT_BYTES, make_matrices

__all__ = ["run_resilient_matmul", "B_TAG", "UNIT_TAG", "RES_TAG",
           "STOP_TAG"]

B_TAG = 21
UNIT_TAG = 22
RES_TAG = 23
STOP_TAG = 24

#: nominal wire size of a STOP message
_STOP_BYTES = 8


def run_resilient_matmul(runtime: Any, n: int = 48, units: int = 12,
                         seed: int = 7, compute_s_per_unit: float = 0.002,
                         poll_s: float = 0.05,
                         max_polls: int = 10_000) -> dict:
    """Run the reassigning matmul on a built runtime; returns a result
    dict (makespan, correctness, reassignment/duplicate counters).

    ``runtime`` must have a :class:`~repro.resilience.ClusterResilience`
    attached — without a failure detector there is no evidence to
    reassign on.  ``units`` should exceed the worker count so a dead
    worker actually strands work.  ``max_polls`` bounds the
    coordinator's wait loop so a mis-specified scenario fails loudly
    instead of spinning forever.
    """
    if runtime.resilience is None:
        raise ValueError(
            "run_resilient_matmul needs a runtime with resilience enabled "
            "(pass resilience=ClusterResilience(...) to NcsRuntime, or add "
            "a [resilience] table to the scenario)")
    cluster = runtime.cluster
    n_hosts = cluster.n_hosts
    if n_hosts < 2:
        raise ValueError("need a coordinator and at least one worker")
    workers = list(range(1, n_hosts))
    if units < 1:
        raise ValueError("units must be >= 1")
    if n % units:
        raise ValueError(f"{n} rows do not divide into {units} units")

    A, B = make_matrices(n, seed)
    step = n // units
    bounds = [(u * step, (u + 1) * step) for u in range(units)]
    b_bytes = n * n * ELEMENT_BYTES
    unit_bytes = step * n * ELEMENT_BYTES
    C = np.zeros((n, n))
    detector = runtime.resilience.detectors[0]
    m_reassigned = cluster.sim.metrics.counter(
        "resilience.reassigned_units",
        help="work units redistributed away from dead workers")

    stats = {"reassigned_units": 0, "duplicate_results": 0, "polls": 0,
             "stalled_out_of_quorum": 0, "dead_workers": 0}

    def worker(ctx, pid):
        b = None
        queued: list[tuple] = []   # units that raced ahead of B
        while True:
            msg = yield ctx.recv(from_process=0)
            if msg.tag == STOP_TAG:
                return pid
            if msg.tag == B_TAG:
                b = msg.data
            elif msg.tag == UNIT_TAG:
                queued.append(msg.data)
            if b is None:
                continue
            while queued:
                uid, (lo, hi), a_block = queued.pop(0)
                yield ctx.compute(compute_s_per_unit, "matmul-unit")
                block = a_block @ b
                yield ctx.send(-1, 0, (uid, (lo, hi), block),
                               unit_bytes, tag=RES_TAG)

    def coordinator(ctx):
        for w in workers:
            yield ctx.send(-1, w, B, b_bytes, tag=B_TAG)
        assigned: dict[int, int] = {}
        for uid in range(units):
            w = workers[uid % len(workers)]
            lo, hi = bounds[uid]
            yield ctx.send(-1, w, (uid, (lo, hi), A[lo:hi]),
                           unit_bytes, tag=UNIT_TAG)
            assigned[uid] = w
        done: set[int] = set()
        polls = 0
        while len(done) < units:
            try:
                msg = yield ctx.recv(tag=RES_TAG, timeout=poll_s)
            except (RecvTimeout, MessageLost):
                polls += 1
                stats["polls"] = polls
                if polls > max_polls:
                    raise RuntimeError(
                        f"coordinator stalled: {units - len(done)} unit(s) "
                        f"outstanding after {polls} polls")
                if not detector.in_quorum():
                    stats["stalled_out_of_quorum"] += 1
                    continue
                survivors = [w for w in workers if not detector.is_dead(w)]
                if not survivors:
                    raise RuntimeError("every worker is dead")
                for uid, w in sorted(assigned.items()):
                    if uid in done or not detector.is_dead(w):
                        continue
                    nw = survivors[uid % len(survivors)]
                    lo, hi = bounds[uid]
                    assigned[uid] = nw
                    stats["reassigned_units"] += 1
                    m_reassigned.inc()
                    cluster.tracer.point("resilience:coordinator",
                                         "reassign", (uid, w, nw))
                    yield ctx.send(-1, nw, (uid, (lo, hi), A[lo:hi]),
                                   unit_bytes, tag=UNIT_TAG)
                continue
            uid, (lo, hi), block = msg.data
            if uid in done:
                stats["duplicate_results"] += 1
                continue
            done.add(uid)
            C[lo:hi] = block
        # snapshot before STOP: once workers exit they stop heartbeating
        # and the drain tail would (correctly) count them as dead too
        stats["dead_workers"] = sum(1 for w in workers if detector.is_dead(w))
        for w in workers:
            yield ctx.send(-1, w, None, _STOP_BYTES, tag=STOP_TAG)

    runtime.t_create(0, coordinator, name="coordinator")
    for w in workers:
        runtime.t_create(w, worker, (w,), name=f"worker{w}")
    makespan = runtime.run()
    return {
        "makespan_s": makespan,
        "correct": bool(np.allclose(C, A @ B)),
        "n": n, "units": units, "workers": len(workers),
        "dead_workers": stats["dead_workers"],
        "reassigned_units": stats["reassigned_units"],
        "duplicate_results": stats["duplicate_results"],
        "stalled_out_of_quorum": stats["stalled_out_of_quorum"],
    }
