"""Distributed DIF FFT (paper §5.3, Table 3, Figs 19/20/21).

Decimation-in-frequency radix-2 FFT over the host-node model.  With M
sample points and P workers (P = N processes for p4, P = 2N threads for
NCS), each worker holds two arrays A and B of M/(2P) points:
initially ``A = s[w*r : (w+1)*r]`` and ``B = s[M/2 + w*r : ...]``
(r = M/(2P)).

Each of the first log2(P) stages performs the butterfly
``X = A + B; Y = (A - B) * W**k`` with ``k = ((w*r + i) * 2**step) mod M/2``
(the uniform twiddle rule of Fig 21) and then exchanges with the partner
at distance ``d = P / 2**(step+1)``: the low worker keeps X and receives
the partner's X; the high worker keeps Y and receives the partner's Y —
after which every worker owns a contiguous chunk of one independent
sub-problem.  The remaining log2(M) - log2(P) stages are local.  In the
NCS version the *last* exchange pairs the two threads of one process,
so it crosses no wire (paper: "the last communication step is local
among threads and does not involve remote communication").

``dif_fft_local`` / ``DifWorkerState`` implement the math once; both
the p4 and NCS programs and the sequential reference drive the same
code, and the reference is validated against ``numpy.fft.fft``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core import NcsRuntime
from ..core.mps import ServiceMode
from ..p4 import P4Runtime
from .common import (AppResult, DATA, RESULT, build_platform_cluster,
                     platform_costs, run_p4_programs)

__all__ = ["DifWorkerState", "dif_fft_reference", "bit_reverse_indices",
           "run_fft_p4", "run_fft_ncs", "make_samples"]

#: complex64 on the wire (matching the paper's single-precision era data)
ELEMENT_BYTES = 8

EXCHANGE_TAG = 7


def make_samples(m: int, n_sets: int = 8, seed: int = 3) -> np.ndarray:
    """``n_sets`` independent sample vectors of length ``m``."""
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((n_sets, m))
            + 1j * rng.standard_normal((n_sets, m)))


def bit_reverse_indices(m: int) -> np.ndarray:
    """Output permutation of an in-place DIF FFT."""
    bits = int(math.log2(m))
    idx = np.arange(m)
    out = np.zeros(m, dtype=int)
    for _ in range(bits):
        out = (out << 1) | (idx & 1)
        idx >>= 1
    return out


@dataclass
class DifWorkerState:
    """The per-worker computation of Figs 20/21, shared by all variants."""

    worker: int                  # global worker number (thread_num)
    n_workers: int               # P
    m: int                       # M sample points
    a: np.ndarray
    b: np.ndarray
    base: int = field(init=False)   # virtual position of A[0] (tracked)

    def __post_init__(self) -> None:
        if self.m & (self.m - 1):
            raise ValueError("M must be a power of two")
        if self.n_workers & (self.n_workers - 1):
            raise ValueError("worker count must be a power of two")
        r = self.m // (2 * self.n_workers)
        if len(self.a) != r or len(self.b) != r:
            raise ValueError("A/B chunks must hold M/(2P) points each")
        self.base = self.worker * r

    @property
    def r(self) -> int:
        return self.m // (2 * self.n_workers)

    @property
    def comm_stages(self) -> int:
        return int(math.log2(self.n_workers))

    @property
    def local_stages(self) -> int:
        return int(math.log2(self.m)) - self.comm_stages

    def butterfly(self, step: int) -> tuple[np.ndarray, np.ndarray]:
        """One X/Y butterfly with the Fig 21 twiddle rule."""
        i = np.arange(self.r)
        k = ((self.worker * self.r + i) * (1 << step)) % (self.m // 2)
        w = np.exp(-2j * np.pi * k / self.m)
        x = self.a + self.b
        y = (self.a - self.b) * w
        return x, y

    def partner(self, step: int) -> tuple[int, bool]:
        """(partner worker, am-I-the-low-half) for a comm stage."""
        d = self.n_workers >> (step + 1)
        low = (self.worker % (2 * d)) < d
        return (self.worker + d if low else self.worker - d), low

    def exchange_prepare(self, step: int):
        """Compute the butterfly and decide what to ship: the low worker
        sends Y (keeping X), the high worker sends X (keeping Y).
        Returns (partner, outgoing, keep_is_a)."""
        x, y = self.butterfly(step)
        partner, low = self.partner(step)
        if low:
            return partner, y, x, True
        return partner, x, y, False

    def exchange_complete(self, step: int, kept: np.ndarray,
                          received: np.ndarray, low: bool) -> None:
        """Install the kept/received halves and the new virtual base.

        Invariant: entering stage *s*, A sits at virtual positions
        ``base + i`` and B at ``base + M/2^(s+1) + i``.  The low partner
        keeps the X (top) sub-problem, so its base is unchanged; the
        high partner keeps the Y (bottom) sub-problem, whose positions
        start ``M/2^(s+1) - M/2^(s+2)`` above its old base — i.e. the
        base advances by ``M >> (step + 2)``.
        """
        if low:
            self.a = kept
            self.b = received
        else:
            self.a = received
            self.b = kept
            self.base += self.m >> (step + 2)

    def run_local_stages(self) -> np.ndarray:
        """Run the remaining stages on the worker's contiguous 2r chunk;
        returns the chunk in virtual (pre-bit-reversal) order."""
        u = np.concatenate([self.a, self.b])
        size = len(u)
        total_stages = int(math.log2(self.m))
        for step in range(self.comm_stages, total_stages):
            m_blk = self.m >> step          # current block size (global)
            h = m_blk // 2
            # within our chunk, blocks are contiguous and h <= r
            for start in range(0, size, m_blk):
                j = np.arange(h)
                k = (j * (1 << step)) % (self.m // 2)
                w = np.exp(-2j * np.pi * k / self.m)
                top = u[start:start + h]
                bot = u[start + h:start + m_blk]
                x = top + bot
                y = (top - bot) * w
                u[start:start + h] = x
                u[start + h:start + m_blk] = y
        return u

    def n_butterflies(self) -> int:
        """Butterflies this worker performs across all stages."""
        return self.r * int(math.log2(self.m))


def dif_fft_reference(s: np.ndarray, n_workers: int) -> np.ndarray:
    """Sequential execution of the exact distributed algorithm (all
    workers simulated in-process) — the correctness oracle for the
    message-passing variants, itself validated against numpy."""
    m = len(s)
    r = m // (2 * n_workers)
    workers = [
        DifWorkerState(w, n_workers, m,
                       s[w * r:(w + 1) * r].astype(complex),
                       s[m // 2 + w * r: m // 2 + (w + 1) * r].astype(complex))
        for w in range(n_workers)
    ]
    for step in range(workers[0].comm_stages):
        outgoing = {}
        plans = {}
        for st in workers:
            partner, out, keep, low = st.exchange_prepare(step)
            outgoing[st.worker] = out
            plans[st.worker] = (partner, keep, low)
        for st in workers:
            partner, keep, low = plans[st.worker]
            st.exchange_complete(step, keep, outgoing[partner], low)
    v = np.zeros(m, dtype=complex)
    for st in workers:
        chunk = st.run_local_stages()
        v[st.base:st.base + 2 * st.r] = chunk
    return v[bit_reverse_indices(m)]


# ---------------------------------------------------------------------------
# p4 variant (Fig 19): one worker per process
# ---------------------------------------------------------------------------

def run_fft_p4(platform: str, n_nodes: int, m: int = 512, n_sets: int = 8,
               seed: int = 3, trace: bool = False, cluster=None,
               p4_params=None) -> AppResult:
    """Host + ``n_nodes`` single-threaded p4 workers, ``n_sets`` sample
    sets processed one after another (paper §5.3.1)."""
    samples = make_samples(m, n_sets, seed)
    costs = platform_costs(platform)
    cluster = cluster or build_platform_cluster(platform, n_nodes + 1,
                                                trace=trace)
    rt = P4Runtime(cluster, p4_params)
    P = n_nodes
    r = m // (2 * P)
    chunk_bytes = r * ELEMENT_BYTES
    outputs = np.zeros((n_sets, m), dtype=complex)

    def host(p4):
        for k in range(n_sets):
            s = samples[k]
            yield from p4.compute(0.5 * m * costs.fft_host_per_point_s,
                                  "fft-host-prep")
            for w in range(P):
                a = s[w * r:(w + 1) * r].astype(complex)
                b = s[m // 2 + w * r: m // 2 + (w + 1) * r].astype(complex)
                yield from p4.send(DATA, w + 1, (a, b), 2 * chunk_bytes)
            v = np.zeros(m, dtype=complex)
            for _ in range(P):
                msg = yield from p4.recv(type_=RESULT)
                base, chunk = msg.data
                v[base:base + 2 * r] = chunk
            yield from p4.compute(0.5 * m * costs.fft_host_per_point_s,
                                  "fft-host-assemble")
            outputs[k] = v[bit_reverse_indices(m)]

    def node(p4):
        w = p4.pid - 1
        for _ in range(n_sets):
            msg = yield from p4.recv(type_=DATA, from_=0)
            a, b = msg.data
            st = DifWorkerState(w, P, m, a, b)
            for step in range(st.comm_stages):
                yield from p4.compute(r * costs.fft_butterfly_s,
                                      "fft-butterfly")
                partner, out, keep, low = st.exchange_prepare(step)
                yield from p4.send(EXCHANGE_TAG + step, partner + 1, out,
                                   chunk_bytes)
                rmsg = yield from p4.recv(type_=EXCHANGE_TAG + step,
                                          from_=partner + 1)
                st.exchange_complete(step, keep, rmsg.data, low)
            yield from p4.compute(st.local_stages * r * costs.fft_butterfly_s,
                                  "fft-butterfly")
            chunk = st.run_local_stages()
            yield from p4.send(RESULT, 0, (st.base, chunk), 2 * chunk_bytes)

    procs = [rt.spawn(0, host)] + [rt.spawn(i, node)
                                   for i in range(1, P + 1)]
    makespan = run_p4_programs(cluster, procs)
    ref = np.fft.fft(samples, axis=1)
    correct = bool(np.allclose(outputs, ref))
    return AppResult("fft", "p4", platform, n_nodes, makespan, correct,
                     details={"m": m, "sets": n_sets}, cluster=cluster)


# ---------------------------------------------------------------------------
# NCS variant (Figs 20/21): two threads per node process
# ---------------------------------------------------------------------------

def run_fft_ncs(platform: str, n_nodes: int, m: int = 512, n_sets: int = 8,
                threads_per_node: int = 2, seed: int = 3,
                trace: bool = False, mode: ServiceMode = ServiceMode.P4,
                cluster=None, p4_params=None) -> AppResult:
    """Host (single thread, §5.3.2) + ``threads_per_node`` worker threads
    per node: worker ``w`` is thread ``w % T`` of process ``w // T + 1``;
    the final exchange pairs the threads of one process, so it never
    touches the network."""
    samples = make_samples(m, n_sets, seed)
    costs = platform_costs(platform)
    cluster = cluster or build_platform_cluster(platform, n_nodes + 1,
                                                trace=trace)
    rt = NcsRuntime(cluster, mode=mode, p4_params=p4_params)
    T = threads_per_node
    P = n_nodes * T
    r = m // (2 * P)
    chunk_bytes = r * ELEMENT_BYTES
    outputs = np.zeros((n_sets, m), dtype=complex)

    worker_tids: dict[int, int] = {}   # worker -> tid
    host_tid_box: list[int] = []

    def wpid(w: int) -> int:
        return w // T + 1

    def host_thread(ctx):
        for k in range(n_sets):
            s = samples[k]
            yield ctx.compute(0.5 * m * costs.fft_host_per_point_s,
                              "fft-host-prep")
            for w in range(P):
                a = s[w * r:(w + 1) * r].astype(complex)
                b = s[m // 2 + w * r: m // 2 + (w + 1) * r].astype(complex)
                yield ctx.send(worker_tids[w], wpid(w), (a, b),
                               2 * chunk_bytes, tag=DATA)
            v = np.zeros(m, dtype=complex)
            for _ in range(P):
                msg = yield ctx.recv(tag=RESULT)
                base, chunk = msg.data
                v[base:base + 2 * r] = chunk
            yield ctx.compute(0.5 * m * costs.fft_host_per_point_s,
                              "fft-host-assemble")
            outputs[k] = v[bit_reverse_indices(m)]

    def worker_thread(ctx, w: int):
        for _ in range(n_sets):
            msg = yield ctx.recv(from_process=0, tag=DATA)
            a, b = msg.data
            st = DifWorkerState(w, P, m, a, b)
            for step in range(st.comm_stages):
                yield ctx.compute(r * costs.fft_butterfly_s, "fft-butterfly")
                partner, out, keep, low = st.exchange_prepare(step)
                yield ctx.send(worker_tids[partner], wpid(partner), out,
                               chunk_bytes, tag=EXCHANGE_TAG + step)
                rmsg = yield ctx.recv(from_thread=worker_tids[partner],
                                      from_process=wpid(partner),
                                      tag=EXCHANGE_TAG + step)
                st.exchange_complete(step, keep, rmsg.data, low)
            yield ctx.compute(st.local_stages * r * costs.fft_butterfly_s,
                              "fft-butterfly")
            chunk = st.run_local_stages()
            yield ctx.send(host_tid_box[0], 0, (st.base, chunk),
                           2 * chunk_bytes, tag=RESULT)

    host_tid_box.append(rt.t_create(0, host_thread, name="fft-host"))
    for w in range(P):
        worker_tids[w] = rt.t_create(wpid(w), worker_thread, (w,),
                                     name=f"w{w}")
    makespan = rt.run(max_events=50_000_000)
    ref = np.fft.fft(samples, axis=1)
    correct = bool(np.allclose(outputs, ref))
    return AppResult("fft", "ncs", platform, n_nodes, makespan, correct,
                     details={"m": m, "sets": n_sets, "threads": T,
                              "mode": mode.value},
                     cluster=cluster)
