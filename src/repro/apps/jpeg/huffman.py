"""Canonical Huffman coding over arbitrary hashable symbols.

The JPEG codec entropy-codes its RLE symbol stream with a canonical
Huffman code built from the stream's own symbol frequencies (the table
travels with the compressed data, as a real JFIF file's DHT segments
do).  Includes a bit-level writer/reader pair.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Any, Iterable, Optional

__all__ = ["HuffmanCode", "BitWriter", "BitReader"]


class BitWriter:
    """Accumulates bits msb-first into a bytearray."""

    def __init__(self) -> None:
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0

    def write(self, value: int, nbits: int) -> None:
        if nbits < 0 or (nbits and value >> nbits):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._acc = (self._acc << nbits) | value
        self._nbits += nbits
        while self._nbits >= 8:
            self._nbits -= 8
            self._out.append((self._acc >> self._nbits) & 0xFF)
        self._acc &= (1 << self._nbits) - 1

    def getvalue(self) -> bytes:
        """Flush (zero-padded) and return the bitstream."""
        if self._nbits:
            pad = 8 - self._nbits
            return bytes(self._out) + bytes(
                [(self._acc << pad) & 0xFF])
        return bytes(self._out)

    @property
    def bit_length(self) -> int:
        return len(self._out) * 8 + self._nbits


class BitReader:
    """Reads bits msb-first from a bytes object."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def read(self, nbits: int) -> int:
        out = 0
        for _ in range(nbits):
            byte = self._pos >> 3
            if byte >= len(self._data):
                raise EOFError("bitstream exhausted")
            bit = (self._data[byte] >> (7 - (self._pos & 7))) & 1
            out = (out << 1) | bit
            self._pos += 1
        return out

    def read_bit(self) -> int:
        return self.read(1)


class HuffmanCode:
    """A canonical Huffman code over a symbol alphabet."""

    def __init__(self, lengths: dict[Any, int]):
        if not lengths:
            raise ValueError("empty alphabet")
        self.lengths = dict(lengths)
        self.codes = self._canonical_codes(self.lengths)
        # decode table: (length, code) -> symbol
        self._decode = {(l, c): s for s, (c, l) in self.codes.items()}
        self.max_len = max(self.lengths.values())

    # ------------------------------------------------------------ building
    @classmethod
    def from_symbols(cls, symbols: Iterable[Any]) -> "HuffmanCode":
        freqs = Counter(symbols)
        if not freqs:
            raise ValueError("cannot build a code from an empty stream")
        return cls(cls._code_lengths(freqs))

    @staticmethod
    def _code_lengths(freqs: Counter) -> dict[Any, int]:
        if len(freqs) == 1:
            return {next(iter(freqs)): 1}
        heap = [(f, i, (sym,)) for i, (sym, f) in enumerate(
            sorted(freqs.items(), key=lambda kv: repr(kv[0])))]
        heapq.heapify(heap)
        depths: Counter = Counter()
        counter = len(heap)
        while len(heap) > 1:
            f1, _, s1 = heapq.heappop(heap)
            f2, _, s2 = heapq.heappop(heap)
            for s in s1 + s2:
                depths[s] += 1
            counter += 1
            heapq.heappush(heap, (f1 + f2, counter, s1 + s2))
        return dict(depths)

    @staticmethod
    def _canonical_codes(lengths: dict[Any, int]) -> dict[Any, tuple[int, int]]:
        ordered = sorted(lengths.items(), key=lambda kv: (kv[1], repr(kv[0])))
        codes = {}
        code = 0
        prev_len = ordered[0][1]
        for sym, length in ordered:
            code <<= (length - prev_len)
            codes[sym] = (code, length)
            code += 1
            prev_len = length
        return codes

    # ------------------------------------------------------------- encoding
    def encode(self, symbols: Iterable[Any],
               writer: Optional[BitWriter] = None) -> bytes:
        w = writer or BitWriter()
        for sym in symbols:
            try:
                code, length = self.codes[sym]
            except KeyError:
                raise KeyError(f"symbol {sym!r} not in code") from None
            w.write(code, length)
        return w.getvalue()

    def decode(self, data: bytes, n_symbols: int) -> list:
        reader = BitReader(data)
        out = []
        for _ in range(n_symbols):
            code = 0
            length = 0
            while True:
                code = (code << 1) | reader.read_bit()
                length += 1
                sym = self._decode.get((length, code))
                if sym is not None:
                    out.append(sym)
                    break
                if length > self.max_len:
                    raise ValueError("invalid bitstream (no code matches)")
        return out

    def encoded_bit_length(self, symbols: Iterable[Any]) -> int:
        return sum(self.codes[s][1] for s in symbols)
