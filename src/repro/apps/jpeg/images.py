"""Synthetic benchmark imagery.

The paper compresses "a 600 Kbyte image"; we generate a deterministic
960x640 grayscale image (exactly 600 KiB of pixels) with natural-image
statistics — smooth gradients, oriented texture, a few hard edges and
mild noise — so the codec's compression ratio and per-block work are
realistic rather than degenerate.
"""

from __future__ import annotations

import numpy as np

__all__ = ["benchmark_image", "IMAGE_HEIGHT", "IMAGE_WIDTH"]

IMAGE_HEIGHT = 640
IMAGE_WIDTH = 960


def benchmark_image(height: int = IMAGE_HEIGHT, width: int = IMAGE_WIDTH,
                    seed: int = 1995) -> np.ndarray:
    """A deterministic grayscale test image (uint8, 600 KiB by default)."""
    if height % 8 or width % 8:
        raise ValueError("image dimensions must be multiples of 8")
    rng = np.random.default_rng(seed)
    y = np.linspace(0, 1, height)[:, None]
    x = np.linspace(0, 1, width)[None, :]
    img = 120 + 60 * y + 40 * np.sin(2 * np.pi * (3 * x + 1.5 * y))
    img += 25 * np.sin(2 * np.pi * (12 * x * y))
    # hard-edged rectangles (text/graphics-like content)
    img[height // 5: height // 3, width // 6: width // 3] += 45
    img[int(height * 0.6): int(height * 0.8),
        int(width * 0.55): int(width * 0.9)] -= 55
    img += rng.normal(0, 3.0, size=(height, width))
    return np.clip(img, 0, 255).astype(np.uint8)
