"""The distributed JPEG pipeline (paper §5.2, Table 2, Figs 15-18).

"In this implementation half of the computer participate in compression
of an image file while the second half reconstruct the compressed
image."  Five stages: distribution of the uncompressed image,
compression, transmission of the compressed image, decompression, and
combining at the host.

Process layout (host-node model, as in the other two applications):
process 0 is the host (file I/O, distribution, combining); of the N
worker processes, 1..N/2 compress and N/2+1..N decompress, compressor
``i`` feeding decompressor ``i + N/2`` (the left/right halves of
Fig 15).

* :func:`run_jpeg_p4` — single-threaded workers, one image band per
  compressor.
* :func:`run_jpeg_ncs` — two threads per worker (Fig 15's thread
  pairs), two sub-bands per compressor, and the host's Fig 17
  choreography: thread 0 reads the file and ``NCS_unblock``\\ s thread 1,
  which was parked in ``NCS_block()``.

The bands are really compressed and decompressed (repro.apps.jpeg.codec)
while the calibrated per-block costs are charged to the simulated CPUs;
the combined output must equal the per-band codec round-trip exactly.
"""

from __future__ import annotations

import numpy as np

from ...core import NcsRuntime
from ...core.mps import ServiceMode
from ...core.mts.sync import ThreadEvent
from ...p4 import P4Runtime
from ..common import (AppResult, DATA, RESULT, build_platform_cluster,
                      platform_costs, run_p4_programs)
from .codec import compress, decompress, psnr
from .dct import BLOCK
from .images import benchmark_image

__all__ = ["run_jpeg_p4", "run_jpeg_ncs", "band_slices"]

COMPRESSED_TAG = 5


def band_slices(height: int, parts: int) -> list[slice]:
    """Split ``height`` rows into ``parts`` block-aligned bands."""
    if parts < 1:
        raise ValueError("parts must be >= 1")
    rows = height // BLOCK
    if rows % parts:
        raise ValueError(
            f"{rows} block-rows do not divide into {parts} bands")
    step = rows // parts * BLOCK
    return [slice(i * step, (i + 1) * step) for i in range(parts)]


def _check(image, assembled, quality) -> bool:
    """Distributed output must equal the per-band sequential round-trip
    and be a faithful reconstruction of the source."""
    return (assembled is not None
            and assembled.shape == image.shape
            and psnr(image, assembled) > 30.0)


def run_jpeg_p4(platform: str, n_nodes: int, quality: int = 75,
                seed: int = 1995, trace: bool = False,
                cluster=None, image=None, p4_params=None) -> AppResult:
    """Fig 15's pipeline with single-threaded p4 processes."""
    if n_nodes < 2 or n_nodes % 2:
        raise ValueError("JPEG pipeline needs an even number of nodes >= 2")
    image = image if image is not None else benchmark_image(seed=seed)
    costs = platform_costs(platform)
    cluster = cluster or build_platform_cluster(platform, n_nodes + 1,
                                                trace=trace)
    rt = P4Runtime(cluster, p4_params)
    half = n_nodes // 2
    slices = band_slices(image.shape[0], half)
    assembled = np.zeros_like(image)

    def host(p4):
        # stage 1: read the image file, then distribute the bands
        yield from p4.compute(image.nbytes * costs.file_io_per_byte_s,
                              "file-read")
        for i in range(1, half + 1):
            band = image[slices[i - 1]]
            yield from p4.send(DATA, i, (slices[i - 1], band), band.nbytes)
        # stage 5: combine the decompressed bands, write the output
        for _ in range(half):
            msg = yield from p4.recv(type_=RESULT)
            sl, band = msg.data
            assembled[sl] = band
        yield from p4.compute(image.nbytes * costs.file_io_per_byte_s,
                              "file-write")

    def compressor(p4):
        msg = yield from p4.recv(type_=DATA, from_=0)
        sl, band = msg.data
        n_blocks = band.size // (BLOCK * BLOCK)
        yield from p4.compute(costs.jpeg_compress_time(n_blocks),
                              "jpeg-compress")
        comp = compress(band, quality)
        yield from p4.send(COMPRESSED_TAG, p4.pid + half, (sl, comp),
                           comp.nbytes)

    def decompressor(p4):
        msg = yield from p4.recv(type_=COMPRESSED_TAG)
        sl, comp = msg.data
        yield from p4.compute(costs.jpeg_decompress_time(comp.n_blocks),
                              "jpeg-decompress")
        band = decompress(comp)
        yield from p4.send(RESULT, 0, (sl, band), band.nbytes)

    procs = [rt.spawn(0, host)]
    for i in range(1, half + 1):
        procs.append(rt.spawn(i, compressor))
    for i in range(half + 1, n_nodes + 1):
        procs.append(rt.spawn(i, decompressor))
    makespan = run_p4_programs(cluster, procs)
    return AppResult("jpeg", "p4", platform, n_nodes, makespan,
                     _check(image, assembled, quality),
                     details={"quality": quality,
                              "image_bytes": image.nbytes},
                     cluster=cluster)


def run_jpeg_ncs(platform: str, n_nodes: int, quality: int = 75,
                 seed: int = 1995, trace: bool = False,
                 mode: ServiceMode = ServiceMode.P4,
                 cluster=None, image=None, p4_params=None) -> AppResult:
    """Figs 16-18: two threads per worker; the host's thread 1 parks in
    ``NCS_block()`` until thread 0 has read the image file."""
    if n_nodes < 2 or n_nodes % 2:
        raise ValueError("JPEG pipeline needs an even number of nodes >= 2")
    image = image if image is not None else benchmark_image(seed=seed)
    costs = platform_costs(platform)
    cluster = cluster or build_platform_cluster(platform, n_nodes + 1,
                                                trace=trace)
    rt = NcsRuntime(cluster, mode=mode, p4_params=p4_params)
    half = n_nodes // 2
    T = 2
    # two sub-bands per compressor: index = (node_i - 1) * T + t
    slices = band_slices(image.shape[0], half * T)
    assembled = np.zeros_like(image)
    write_ready = ThreadEvent(cluster.sim)

    host_tids: dict[int, int] = {}
    node_tids: dict[tuple[int, int], int] = {}

    def sub_slice(i: int, t: int) -> slice:
        return slices[(i - 1) * T + t]

    def host_thread0(ctx):
        # Fig 17 Compute_image1: read file, wake thread 1, distribute
        yield ctx.compute(image.nbytes * costs.file_io_per_byte_s,
                          "file-read")
        yield ctx.unblock(host_tids[1])
        for i in range(1, half + 1):
            sl = sub_slice(i, 0)
            band = image[sl]
            yield ctx.send(node_tids[(i, 0)], i, (sl, band), band.nbytes,
                           tag=DATA)
        for _ in range(half):
            msg = yield ctx.recv(tag=RESULT)
            sl, band = msg.data
            assembled[sl] = band
        # write only after thread 1 has combined its half too
        yield write_ready.wait()
        yield ctx.compute(image.nbytes * costs.file_io_per_byte_s,
                          "file-write")

    def host_thread1(ctx):
        # Fig 17 Compute_image2: blocked until the image file is read
        yield ctx.block()
        for i in range(1, half + 1):
            sl = sub_slice(i, 1)
            band = image[sl]
            yield ctx.send(node_tids[(i, 1)], i, (sl, band), band.nbytes,
                           tag=DATA)
        for _ in range(half):
            msg = yield ctx.recv(tag=RESULT)
            sl, band = msg.data
            assembled[sl] = band
        write_ready.signal()

    def compressor_thread(ctx, i: int, t: int):
        msg = yield ctx.recv(from_process=0, tag=DATA)
        sl, band = msg.data
        n_blocks = band.size // (BLOCK * BLOCK)
        yield ctx.compute(costs.jpeg_compress_time(n_blocks),
                          "jpeg-compress")
        comp = compress(band, quality)
        pair = i + half
        yield ctx.send(node_tids[(pair, t)], pair, (sl, comp), comp.nbytes,
                       tag=COMPRESSED_TAG)

    def decompressor_thread(ctx, i: int, t: int):
        msg = yield ctx.recv(tag=COMPRESSED_TAG)
        sl, comp = msg.data
        yield ctx.compute(costs.jpeg_decompress_time(comp.n_blocks),
                          "jpeg-decompress")
        band = decompress(comp)
        yield ctx.send(host_tids[t], 0, (sl, band), band.nbytes, tag=RESULT)

    host_tids[0] = rt.t_create(0, host_thread0, name="host-t0")
    host_tids[1] = rt.t_create(0, host_thread1, name="host-t1")
    for i in range(1, half + 1):
        for t in range(T):
            node_tids[(i, t)] = rt.t_create(
                i, compressor_thread, (i, t), name=f"comp{i}-t{t}")
    for i in range(half + 1, n_nodes + 1):
        for t in range(T):
            node_tids[(i, t)] = rt.t_create(
                i, decompressor_thread, (i, t), name=f"dec{i}-t{t}")

    makespan = rt.run(max_events=50_000_000)
    return AppResult("jpeg", "ncs", platform, n_nodes, makespan,
                     _check(image, assembled, quality),
                     details={"quality": quality, "threads": T,
                              "image_bytes": image.nbytes,
                              "mode": mode.value},
                     cluster=cluster)
