"""8x8 block DCT-II / DCT-III (the JPEG transform pair).

Implemented from scratch with the orthonormal DCT matrix so the codec
has no dependency beyond numpy; vectorized over whole stacks of blocks
(one einsum per image) per the numpy performance guidance.
"""

from __future__ import annotations

import numpy as np

__all__ = ["dct_matrix", "dct2", "idct2", "blockify", "unblockify",
           "BLOCK"]

BLOCK = 8


def dct_matrix(n: int = BLOCK) -> np.ndarray:
    """The orthonormal type-II DCT matrix C, so that ``y = C @ x``."""
    k = np.arange(n)[:, None]
    i = np.arange(n)[None, :]
    c = np.cos((2 * i + 1) * k * np.pi / (2 * n))
    c *= np.sqrt(2.0 / n)
    c[0] *= np.sqrt(0.5)
    return c


_C = dct_matrix()
_CT = _C.T


def dct2(blocks: np.ndarray) -> np.ndarray:
    """2-D DCT of a stack of 8x8 blocks, shape (..., 8, 8)."""
    return _C @ blocks @ _CT


def idct2(coeffs: np.ndarray) -> np.ndarray:
    """Inverse 2-D DCT of a stack of 8x8 blocks."""
    return _CT @ coeffs @ _C


def blockify(image: np.ndarray) -> np.ndarray:
    """Split an (H, W) image into a (H/8 * W/8, 8, 8) stack of blocks.

    H and W must be multiples of 8 (the distributed pipeline aligns its
    bands to block rows).
    """
    h, w = image.shape
    if h % BLOCK or w % BLOCK:
        raise ValueError(f"image {h}x{w} is not a multiple of {BLOCK}")
    return (image.reshape(h // BLOCK, BLOCK, w // BLOCK, BLOCK)
            .swapaxes(1, 2)
            .reshape(-1, BLOCK, BLOCK))


def unblockify(blocks: np.ndarray, h: int, w: int) -> np.ndarray:
    """Inverse of :func:`blockify`."""
    if h % BLOCK or w % BLOCK:
        raise ValueError(f"target {h}x{w} is not a multiple of {BLOCK}")
    expected = (h // BLOCK) * (w // BLOCK)
    if len(blocks) != expected:
        raise ValueError(f"need {expected} blocks for {h}x{w}, "
                         f"got {len(blocks)}")
    return (blocks.reshape(h // BLOCK, w // BLOCK, BLOCK, BLOCK)
            .swapaxes(1, 2)
            .reshape(h, w))
