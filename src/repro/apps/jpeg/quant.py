"""JPEG quantization (Annex K luminance table + libjpeg quality scaling)."""

from __future__ import annotations

import numpy as np

__all__ = ["LUMINANCE_TABLE", "quality_table", "quantize", "dequantize"]

#: ITU-T T.81 Annex K, Table K.1 — the standard luminance matrix.
LUMINANCE_TABLE = np.array([
    [16, 11, 10, 16, 24, 40, 51, 61],
    [12, 12, 14, 19, 26, 58, 60, 55],
    [14, 13, 16, 24, 40, 57, 69, 56],
    [14, 17, 22, 29, 51, 87, 80, 62],
    [18, 22, 37, 56, 68, 109, 103, 77],
    [24, 35, 55, 64, 81, 104, 113, 92],
    [49, 64, 78, 87, 103, 121, 120, 101],
    [72, 92, 95, 98, 112, 100, 103, 99],
], dtype=np.int32)


def quality_table(quality: int = 75) -> np.ndarray:
    """Scale the Annex K table the way libjpeg does (quality 1-100)."""
    if not (1 <= quality <= 100):
        raise ValueError("quality must be in 1..100")
    scale = 5000 // quality if quality < 50 else 200 - 2 * quality
    table = (LUMINANCE_TABLE * scale + 50) // 100
    return np.clip(table, 1, 255).astype(np.int32)


def quantize(coeffs: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Round DCT coefficients to table multiples (stack-aware)."""
    return np.round(coeffs / table).astype(np.int32)


def dequantize(quantized: np.ndarray, table: np.ndarray) -> np.ndarray:
    return (quantized * table).astype(np.float64)
