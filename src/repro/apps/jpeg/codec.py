"""The JPEG-style codec: DCT -> quantize -> zig-zag -> RLE -> Huffman.

A real (if grayscale-only) compression pipeline: ``compress`` produces a
genuine entropy-coded bitstream whose byte length is what the simulated
network carries, and ``decompress`` reconstructs the image; round-trip
PSNR at the default quality is well above 30 dB on the benchmark image.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dct import BLOCK, blockify, dct2, idct2, unblockify
from .huffman import HuffmanCode
from .quant import dequantize, quality_table, quantize
from .rle import decode_blocks, encode_blocks
from .zigzag import from_zigzag, to_zigzag

__all__ = ["CompressedImage", "compress", "decompress", "psnr"]


@dataclass
class CompressedImage:
    """A compressed band/image: the bitstream plus decode metadata."""

    height: int
    width: int
    quality: int
    n_symbols: int
    code_lengths: dict
    payload: bytes

    @property
    def nbytes(self) -> int:
        """Wire size: bitstream + a modest header/table estimate."""
        return len(self.payload) + 64 + 2 * len(self.code_lengths)

    @property
    def n_blocks(self) -> int:
        return (self.height // BLOCK) * (self.width // BLOCK)


def compress(image: np.ndarray, quality: int = 75) -> CompressedImage:
    """Compress a grayscale image (uint8, dims multiples of 8)."""
    if image.dtype != np.uint8:
        raise TypeError("expected a uint8 grayscale image")
    h, w = image.shape
    table = quality_table(quality)
    blocks = blockify(image.astype(np.float64) - 128.0)
    coeffs = dct2(blocks)
    quantized = quantize(coeffs, table)
    zz = to_zigzag(quantized)
    symbols = encode_blocks(zz)
    code = HuffmanCode.from_symbols(symbols)
    payload = code.encode(symbols)
    return CompressedImage(h, w, quality, len(symbols),
                           code.lengths, payload)


def decompress(data: CompressedImage) -> np.ndarray:
    """Reconstruct the image from a :class:`CompressedImage`."""
    code = HuffmanCode(data.code_lengths)
    symbols = code.decode(data.payload, data.n_symbols)
    zz = decode_blocks(symbols, data.n_blocks)
    quantized = from_zigzag(zz)
    table = quality_table(data.quality)
    blocks = idct2(dequantize(quantized, table))
    image = unblockify(blocks, data.height, data.width) + 128.0
    return np.clip(np.round(image), 0, 255).astype(np.uint8)


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB."""
    if original.shape != reconstructed.shape:
        raise ValueError("shape mismatch")
    mse = np.mean((original.astype(np.float64)
                   - reconstructed.astype(np.float64)) ** 2)
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(255.0 ** 2 / mse)
