"""Run-length coding of quantized zig-zag blocks (JPEG-style).

Per block: the DC coefficient is delta-coded against the previous
block's DC; AC coefficients become ``(zero_run, value)`` pairs with an
end-of-block marker once the tail is all zeros.  Symbols are Python
ints/tuples here; the Huffman stage turns them into bits.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

__all__ = ["EOB", "encode_blocks", "decode_blocks"]

#: end-of-block marker symbol
EOB = ("EOB",)


def encode_blocks(zz: np.ndarray) -> list:
    """Encode a (n_blocks, 64) zig-zag stack into a flat symbol list."""
    if zz.ndim != 2 or zz.shape[1] != 64:
        raise ValueError("expected (n_blocks, 64) zig-zag vectors")
    symbols: list = []
    prev_dc = 0
    for vec in zz:
        dc = int(vec[0])
        symbols.append(("DC", dc - prev_dc))
        prev_dc = dc
        run = 0
        last_nonzero = int(np.max(np.nonzero(vec)[0])) if np.any(vec) else 0
        for i in range(1, 64):
            v = int(vec[i])
            if i > last_nonzero:
                break
            if v == 0:
                run += 1
            else:
                symbols.append(("AC", run, v))
                run = 0
        symbols.append(EOB)
    return symbols


def decode_blocks(symbols: Iterable, n_blocks: int) -> np.ndarray:
    """Inverse of :func:`encode_blocks`."""
    out = np.zeros((n_blocks, 64), dtype=np.int32)
    it: Iterator = iter(symbols)
    prev_dc = 0
    for b in range(n_blocks):
        sym = next(it)
        if not (isinstance(sym, tuple) and sym[0] == "DC"):
            raise ValueError(f"block {b}: expected DC symbol, got {sym!r}")
        prev_dc += sym[1]
        out[b, 0] = prev_dc
        pos = 1
        while True:
            sym = next(it)
            if sym == EOB:
                break
            if not (isinstance(sym, tuple) and sym[0] == "AC"):
                raise ValueError(f"block {b}: expected AC symbol, got {sym!r}")
            _, run, value = sym
            pos += run
            if pos >= 64:
                raise ValueError(f"block {b}: AC run overflows the block")
            out[b, pos] = value
            pos += 1
    return out
