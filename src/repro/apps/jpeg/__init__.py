"""JPEG codec substrate + the distributed pipeline of paper §5.2."""

from .codec import CompressedImage, compress, decompress, psnr
from .dct import BLOCK, blockify, dct2, idct2, unblockify
from .huffman import BitReader, BitWriter, HuffmanCode
from .images import IMAGE_HEIGHT, IMAGE_WIDTH, benchmark_image
from .quant import LUMINANCE_TABLE, dequantize, quality_table, quantize
from .rle import EOB, decode_blocks, encode_blocks
from .zigzag import from_zigzag, to_zigzag, zigzag_indices

__all__ = [
    "CompressedImage", "compress", "decompress", "psnr",
    "BLOCK", "blockify", "dct2", "idct2", "unblockify",
    "BitReader", "BitWriter", "HuffmanCode",
    "IMAGE_HEIGHT", "IMAGE_WIDTH", "benchmark_image",
    "LUMINANCE_TABLE", "dequantize", "quality_table", "quantize",
    "EOB", "decode_blocks", "encode_blocks",
    "from_zigzag", "to_zigzag", "zigzag_indices",
]
