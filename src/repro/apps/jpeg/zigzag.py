"""Zig-zag scan order for 8x8 coefficient blocks."""

from __future__ import annotations

import numpy as np

__all__ = ["zigzag_indices", "to_zigzag", "from_zigzag"]


def zigzag_indices(n: int = 8) -> np.ndarray:
    """Flat indices of the zig-zag traversal of an n x n block."""
    order = sorted(
        ((r, c) for r in range(n) for c in range(n)),
        key=lambda rc: (rc[0] + rc[1],
                        rc[1] if (rc[0] + rc[1]) % 2 else rc[0]))
    return np.array([r * n + c for r, c in order])


_ZZ = zigzag_indices()
_INV = np.argsort(_ZZ)


def to_zigzag(blocks: np.ndarray) -> np.ndarray:
    """(..., 8, 8) stack -> (..., 64) in zig-zag order."""
    flat = blocks.reshape(*blocks.shape[:-2], 64)
    return flat[..., _ZZ]


def from_zigzag(vectors: np.ndarray) -> np.ndarray:
    """(..., 64) zig-zag vectors -> (..., 8, 8) stack."""
    return vectors[..., _INV].reshape(*vectors.shape[:-1], 8, 8)
