"""Shared plumbing for the paper's three applications.

Every Table in the paper has an *Ethernet* column (SPARC ELCs on the
shared 10 Mbps segment) and a *NYNET testbed* column (SPARC IPXs on the
ATM LAN); :func:`build_platform_cluster` builds the matching simulated
cluster, and :func:`platform_costs` returns the calibrated compute
constants.  The applications use the paper's host-node model: process 0
is the host, processes 1..N are the nodes, so an "N node" table row
runs on an (N+1)-host cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..hosts import SUN_ELC, SUN_IPX
from ..net import Cluster, build_atm_cluster, build_ethernet_cluster
from ..protocols import TcpParams
from ..registry import TOPOLOGIES
from .costs import AppCosts, ELC_COSTS, IPX_COSTS

__all__ = ["PLATFORMS", "AppResult", "build_platform_cluster",
           "platform_costs", "ELC_TCP", "IPX_TCP"]

#: 1995 SunOS TCP: ~5 KB socket buffers on the Ethernet ELCs (per-message
#: tail segments stall on the 50 ms delayed-ACK timer), and the larger
#: buffers FORE recommended for IP-over-ATM's 9180-byte MTU on the IPXs
#: (at least two segments must fit in the window or every segment stalls).
#: Stall time is dead time for a single-threaded p4 process and compute
#: time for NCS threads.
ELC_TCP = TcpParams(window_bytes=5120, tx_proc_per_segment_s=350e-6,
                    rx_proc_per_segment_s=400e-6, ack_proc_s=150e-6,
                    delayed_ack_s=0.05, ack_every=2)
IPX_TCP = TcpParams(window_bytes=18432, tx_proc_per_segment_s=280e-6,
                    rx_proc_per_segment_s=320e-6, ack_proc_s=120e-6,
                    delayed_ack_s=0.05, ack_every=2)

#: the two benchmark platforms of §2
PLATFORMS = ("ethernet", "nynet")

#: p4 message types used by the applications (matching Fig 13's DATA/RESULT)
DATA, RESULT = 1, 2


@dataclass
class AppResult:
    """Outcome of one application run."""

    app: str
    variant: str                 # "p4" | "ncs"
    platform: str                # "ethernet" | "nynet"
    n_nodes: int
    makespan_s: float
    correct: bool
    details: dict = field(default_factory=dict)
    cluster: Optional[Cluster] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        ok = "ok" if self.correct else "WRONG RESULT"
        return (f"<{self.app}/{self.variant} {self.platform} "
                f"N={self.n_nodes}: {self.makespan_s:.3f}s {ok}>")


def build_platform_cluster(platform: str, n_hosts: int,
                           trace: bool = False, seed: int = 1995,
                           **kw) -> Cluster:
    """An (n_hosts)-host cluster of the named benchmark platform."""
    if platform == "ethernet":
        kw.setdefault("tcp_params", ELC_TCP)
        return build_ethernet_cluster(n_hosts, params=SUN_ELC, trace=trace,
                                      seed=seed, **kw)
    if platform in ("nynet", "atm"):
        kw.setdefault("tcp_params", IPX_TCP)
        return build_atm_cluster(n_hosts, params=SUN_IPX, trace=trace,
                                 seed=seed, **kw)
    raise ValueError(f"unknown platform {platform!r}; "
                     f"expected one of {PLATFORMS}")


@TOPOLOGIES.register(
    "platform-ethernet",
    help="Benchmark platform: SPARC ELCs + 1995 SunOS TCP on Ethernet")
def _build_platform_ethernet(n_hosts: int, **kw) -> Cluster:
    return build_platform_cluster("ethernet", n_hosts, **kw)


@TOPOLOGIES.register(
    "platform-nynet",
    help="Benchmark platform: SPARC IPXs + FORE-tuned TCP on the ATM LAN")
def _build_platform_nynet(n_hosts: int, **kw) -> Cluster:
    return build_platform_cluster("nynet", n_hosts, **kw)


def run_p4_programs(cluster: Cluster, procs,
                    max_events: int = 50_000_000) -> float:
    """Run the simulation and return the p4 application makespan: the
    completion time of the slowest program process (protocol timers may
    keep the simulated clock ticking afterwards; that tail is not
    application time)."""
    finish: dict[int, float] = {}
    for i, proc in enumerate(procs):
        proc.add_callback(lambda ev, i=i: finish.__setitem__(
            i, cluster.sim.now))
    cluster.sim.run(max_events=max_events)
    missing = [p.name for p in procs if not p.triggered]
    if missing:
        raise RuntimeError(f"p4 programs never finished: {missing}")
    for proc in procs:
        _ = proc.value  # re-raise program failures
    return max(finish.values())


def platform_costs(platform: str) -> AppCosts:
    if platform == "ethernet":
        return ELC_COSTS
    if platform in ("nynet", "atm"):
        return IPX_COSTS
    raise ValueError(f"unknown platform {platform!r}")
