"""Registered app drivers: the `[app]` table of a scenario file.

A driver is a callable ``driver(run) -> value`` where ``run`` is a
:class:`repro.config.ScenarioRun`.  Two styles exist:

* **Self-contained drivers** — the paper's three applications
  (``matmul``/``jpeg``/``fft`` in their p4 and NCS variants).  These
  build their own benchmark-platform cluster exactly as the Tables 1-3
  harnesses always have; the scenario's ``[app.params]`` map straight
  onto the ``run_*`` keyword arguments, the ``[runtime]`` table supplies
  mode/flow/error where the variant supports them, and ``obs.trace``
  feeds the app's ``trace`` flag.

* **Runtime drivers** — micro-benchmark bodies (``pingpong``, ``ring``,
  ``stream``) that ask ``run`` for the spec-built cluster/runtime (with
  faults armed and barriers registered) and create NCS threads on it.
  Their bodies are byte-for-byte the hand-wired loops the perf-lock
  goldens were captured from, which is what the spec-equivalence tests
  in ``tests/config`` assert.
"""

from __future__ import annotations

from ..core.api import ServiceMode
from ..registry import APP_DRIVERS
from . import (run_fft_ncs, run_fft_p4, run_jpeg_ncs, run_jpeg_p4,
               run_matmul_ncs, run_matmul_p4)

__all__ = []  # everything is reached through the APP_DRIVERS registry


def _mode(spec_mode):
    """The spec's runtime mode as the enum the app signatures take."""
    return ServiceMode(spec_mode) if isinstance(spec_mode, str) else spec_mode


def _app_params(run) -> dict:
    p = dict(run.params)
    p.setdefault("trace", run.spec.obs.trace)
    return p


def _no_runtime_table(run, *fields):
    """Self-contained drivers that can't honor a runtime field reject it
    loudly instead of silently ignoring the spec."""
    spec = run.spec
    for f in fields:
        if getattr(spec, f) or getattr(spec, f + "_kwargs", None):
            raise ValueError(
                f"driver {spec.app.driver!r} does not support runtime."
                f"{f}; drop it from the scenario or pick the matching "
                "app parameter")
    if spec.barriers:
        raise ValueError(
            f"driver {spec.app.driver!r} manages its own synchronization; "
            "runtime.barriers is not supported")
    if spec.faults is not None:
        raise ValueError(
            f"driver {spec.app.driver!r} builds its own cluster; declare "
            "faults via a runtime driver scenario instead")


@APP_DRIVERS.register(
    "matmul-p4", help="Fig 13 matrix multiply, single-threaded p4 processes")
def _matmul_p4(run):
    _no_runtime_table(run, "flow", "error")
    return run_matmul_p4(**_app_params(run))


@APP_DRIVERS.register(
    "matmul-ncs", help="Fig 14 matrix multiply, multithreaded NCS")
def _matmul_ncs(run):
    _no_runtime_table(run)
    spec = run.spec
    return run_matmul_ncs(mode=_mode(spec.mode), flow=spec.flow,
                          error=spec.error,
                          error_kwargs=dict(spec.error_kwargs) or None,
                          **_app_params(run))


@APP_DRIVERS.register(
    "jpeg-p4", help="Fig 15 JPEG pipeline, single-threaded p4 processes")
def _jpeg_p4(run):
    _no_runtime_table(run, "flow", "error")
    return run_jpeg_p4(**_app_params(run))


@APP_DRIVERS.register(
    "jpeg-ncs", help="Figs 16-18 JPEG pipeline, multithreaded NCS")
def _jpeg_ncs(run):
    _no_runtime_table(run, "flow", "error")
    return run_jpeg_ncs(mode=_mode(run.spec.mode), **_app_params(run))


@APP_DRIVERS.register(
    "fft-p4", help="Fig 19 distributed FFT, single-threaded p4 processes")
def _fft_p4(run):
    _no_runtime_table(run, "flow", "error")
    return run_fft_p4(**_app_params(run))


@APP_DRIVERS.register(
    "fft-ncs", help="Figs 20-21 distributed FFT, multithreaded NCS")
def _fft_ncs(run):
    _no_runtime_table(run, "flow", "error")
    return run_fft_ncs(mode=_mode(run.spec.mode), **_app_params(run))


@APP_DRIVERS.register(
    "pingpong",
    help="Two-host request/reply over the full MPS datapath")
def _pingpong(run):
    """The perf-lock ``pingpong_ethernet`` body, parameterized."""
    p = run.params
    messages = int(p.get("messages", 30))
    nbytes = int(p.get("nbytes", 2048))
    data_tag = int(p.get("data_tag", 1))
    reply_tag = int(p.get("reply_tag", 2))
    rt = run.runtime
    replies = []

    def pong(ctx):
        for _ in range(messages):
            m = yield ctx.recv(tag=data_tag)
            yield ctx.send(m.from_thread, m.from_process,
                           ("pong", m.data[1]), nbytes, tag=reply_tag)

    def ping(ctx, peer):
        for i in range(messages):
            yield ctx.send(peer, 1, ("ping", i), nbytes, tag=data_tag)
            r = yield ctx.recv(tag=reply_tag)
            replies.append(r.data[1])

    peer = rt.t_create(1, pong, name="pong")
    rt.t_create(0, ping, (peer,), name="ping")
    makespan = rt.run()
    return {"makespan_s": makespan, "messages": messages,
            "replies": replies}


@APP_DRIVERS.register(
    "ring",
    help="All-hosts ring exchange + barrier (the chaos-suite workload)")
def _ring(run):
    """The perf-lock ``ring_atm_hsm``/``chaos_loss`` body, parameterized.

    Uses every host in the spec-built cluster.  The closing barrier can
    be declared in the scenario (``[runtime.barriers] 0 = n_hosts``);
    when it isn't, the driver registers it for all hosts itself, so a
    matrix sweep over ``cluster.n_hosts`` needs no per-cell barrier
    table."""
    p = run.params
    rounds = int(p.get("rounds", 2))
    nbytes = int(p.get("nbytes", 4096))
    tag_base = int(p.get("tag_base", 10))
    barrier_id = int(p.get("barrier", 0))
    rt = run.runtime
    n = run.cluster.n_hosts
    if barrier_id not in rt.nodes[0].mps.barrier_parties:
        rt.register_barrier(barrier_id, n)
    received = {pid: [] for pid in range(n)}

    def body(ctx, pid):
        nxt, prev = (pid + 1) % n, (pid - 1) % n
        for r in range(rounds):
            yield ctx.send(-1, nxt, (pid, r), nbytes, tag=r + tag_base)
            msg = yield ctx.recv(from_process=prev, tag=r + tag_base)
            received[pid].append(msg.data)
        yield ctx.barrier(barrier_id)

    for pid in range(n):
        rt.t_create(pid, body, (pid,), name=f"ring{pid}")
    makespan = rt.run()
    return {"makespan_s": makespan, "rounds": rounds,
            "received": {str(k): v for k, v in received.items()}}


@APP_DRIVERS.register(
    "alltoall",
    help="Every host exchanges with every peer each round (parallel load)")
def _alltoall(run):
    """Dense all-to-all rounds: every pid sends to every peer, then
    receives the ``n - 1`` messages addressed to it, then the round
    advances.  Unlike ``ring`` (a single token circulating), every host
    has independent work in flight at all times — the workload the
    sharded kernel's scaling benchmark needs, since a sequential token
    ring leaves all but one shard idle.

    Returns per-pid *counts* rather than message lists so the result
    merges cleanly across shard universes (a ghost pid's count is 0 and
    the owner's count wins under the numeric-max merge rule)."""
    p = run.params
    rounds = int(p.get("rounds", 2))
    nbytes = int(p.get("nbytes", 1024))
    tag_base = int(p.get("tag_base", 100))
    barrier_id = int(p.get("barrier", 0))
    rt = run.runtime
    n = run.cluster.n_hosts
    if barrier_id not in rt.nodes[0].mps.barrier_parties:
        rt.register_barrier(barrier_id, n)
    received = {pid: 0 for pid in range(n)}

    def body(ctx, pid):
        for r in range(rounds):
            for peer in range(n):
                if peer != pid:
                    yield ctx.send(-1, peer, (pid, r), nbytes,
                                   tag=r + tag_base)
            for _ in range(n - 1):
                yield ctx.recv(tag=r + tag_base)
                received[pid] += 1
        yield ctx.barrier(barrier_id)

    for pid in range(n):
        rt.t_create(pid, body, (pid,), name=f"a2a{pid}")
    makespan = rt.run()
    return {"makespan_s": makespan, "rounds": rounds,
            "received": {str(k): v for k, v in received.items()}}


@APP_DRIVERS.register(
    "collective",
    help="Barrier + broadcast + reduce rounds (the collectives workload)")
def _collective(run):
    """One thread per host runs ``rounds`` of barrier -> bcast ->
    reduce over every host, exercising whichever strategy the scenario
    selected (``runtime.collectives = "host"`` or ``"nic"``).

    Round ``r``: all threads hit the barrier, host 0 broadcasts
    ``("payload", r)`` to everyone (tag ``tag_base + r``), then all
    hosts reduce their ``pid + 1`` contributions back to host 0 with
    ``+`` — commutative, so host arrival-order and NIC sorted-order
    folds agree and the correctness flags are strategy-independent."""
    from ..core.mps import group
    p = run.params
    rounds = int(p.get("rounds", 2))
    nbytes = int(p.get("nbytes", 1024))
    tag_base = int(p.get("tag_base", 20))
    barrier_id = int(p.get("barrier", 0))
    rt = run.runtime
    n = run.cluster.n_hosts
    if barrier_id not in rt.nodes[0].mps.barrier_parties:
        rt.register_barrier(barrier_id, n)
    expected_sum = n * (n + 1) // 2
    # tids[pid] is filled before rt.run(); bodies read it lazily
    tids: list = []
    got = {pid: [] for pid in range(1, n)}
    sums: list = []

    def body(ctx, pid):
        members = [(tids[i], i) for i in range(n)]
        root = (tids[0], 0)
        for r in range(rounds):
            yield ctx.barrier(barrier_id)
            if pid == 0:
                yield from group.bcast(ctx, members, ("payload", r),
                                       nbytes, tag=tag_base + r)
            else:
                msg = yield ctx.recv(from_process=0, tag=tag_base + r)
                got[pid].append(msg.data)
            total = yield from group.reduce(ctx, root, members,
                                            pid + 1, 64, lambda a, b: a + b)
            if pid == 0:
                sums.append(total)

    for pid in range(n):
        tids.append(rt.t_create(pid, body, (pid,), name=f"coll{pid}"))
    makespan = rt.run()
    bcast_ok = all(got[pid] == [("payload", r) for r in range(rounds)]
                   for pid in range(1, n))
    reduce_ok = sums == [expected_sum] * rounds
    return {"makespan_s": makespan, "rounds": rounds, "n_hosts": n,
            "bcast_ok": bcast_ok, "reduce_ok": reduce_ok,
            "collectives": run.spec.collectives}


@APP_DRIVERS.register(
    "matmul-resilient",
    help="Matmul with failure detection and work reassignment")
def _matmul_resilient(run):
    """Coordinator/worker matmul that survives worker death: requires a
    [resilience] table; mode/faults/topology come from the spec (use
    ``hsm-failover`` on ``atm-dual`` for the degradation scenarios)."""
    from .resilient import run_resilient_matmul
    p = run.params
    kwargs = {k: p[k] for k in ("n", "units", "seed", "poll_s",
                                "compute_s_per_unit", "max_polls") if k in p}
    return run_resilient_matmul(run.runtime, **kwargs)


@APP_DRIVERS.register(
    "stream",
    help="One-way producer/consumer stream (the Fig 5 QoS workload)")
def _stream(run):
    """Host 0 streams ``frames`` messages of ``nbytes`` to host 1, which
    takes ``consumer_sleep`` seconds per frame — the mismatch that flow
    control (``runtime.flow``) exists to absorb."""
    p = run.params
    frames = int(p.get("frames", 30))
    nbytes = int(p.get("nbytes", 32 * 1024))
    consumer_sleep = float(p.get("consumer_sleep", 0.0))
    tag = int(p.get("tag", 7))
    rt = run.runtime
    latencies = []

    def consumer(ctx):
        for _ in range(frames):
            m = yield ctx.recv(tag=tag)
            latencies.append(rt.cluster.sim.now - m.data[1])
            if consumer_sleep:
                yield ctx.sleep(consumer_sleep)

    def producer(ctx, peer):
        for i in range(frames):
            yield ctx.send(peer, 1, (i, rt.cluster.sim.now), nbytes, tag=tag)

    peer = rt.t_create(1, consumer, name="consumer")
    rt.t_create(0, producer, (peer,), name="producer")
    makespan = rt.run()
    return {"makespan_s": makespan, "frames": frames,
            "mean_latency_s": sum(latencies) / len(latencies),
            "max_latency_s": max(latencies)}
