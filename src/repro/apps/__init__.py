"""The paper's three benchmark applications (p4 and NCS variants)."""

from .common import AppResult, PLATFORMS, build_platform_cluster, platform_costs
from .costs import AppCosts, ELC_COSTS, IPX_COSTS, costs_for_platform
from .fft import run_fft_ncs, run_fft_p4
from .jpeg.distributed import run_jpeg_ncs, run_jpeg_p4
from .matmul import run_matmul_ncs, run_matmul_p4

__all__ = [
    "AppResult", "PLATFORMS", "build_platform_cluster", "platform_costs",
    "AppCosts", "ELC_COSTS", "IPX_COSTS", "costs_for_platform",
    "run_fft_ncs", "run_fft_p4",
    "run_jpeg_ncs", "run_jpeg_p4",
    "run_matmul_ncs", "run_matmul_p4",
]
