"""Calibrated application compute costs.

The paper reports wall-clock seconds on ~1994 SPARCstations running
unoptimized compiled C.  Our applications compute *real* results with
numpy (verified against references), but charge the simulator these
calibrated per-operation constants so the simulated clock reproduces
the paper's single-node rows; the multi-node rows are then genuine
predictions of the communication/overlap model.

Derivations (see EXPERIMENTS.md for the paper-vs-measured ledger):

* **Matmul** — Table 1, 1 node: 25.77 s (ELC), 24.89 s (IPX) for a
  128x128 double matrix product = 128^3 multiply-add pairs.  Minus the
  ~1 s the model attributes to host->node->host transfers, that is
  ~11.8 us per inner-loop iteration on the ELC — slow by modern
  standards, but this is measured 1995 reality (unblocked C triple loop,
  doubles, 33 MHz, compiler of the day); we calibrate to it rather than
  argue with it.
* **FFT** — Table 3, 1 node: 5.76 s (ELC) / 5.25 s (IPX) for 8 sample
  sets of a 512-point DIF FFT = 8 * (512/2) * 9 = 18,432 butterflies,
  plus per-set distribution/collection.  The poor scaling in the
  paper's own table (5.76 -> 3.91 s at 8 nodes) indicates a large
  serial fraction at the host; we model host per-set assembly work
  explicitly.
* **JPEG** — Table 2 has no 1-node row; constants are fitted so the
  2-node rows match: compress+decompress of the 600 KB image ~ 7.4 s
  on the ELC pair, split per 8x8 block (9,600 blocks at 384 pixels^2
  ... 600 KB grayscale = 9,600 blocks of 64 pixels).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AppCosts", "ELC_COSTS", "IPX_COSTS", "costs_for_platform"]


@dataclass(frozen=True)
class AppCosts:
    """Per-operation compute costs for one workstation model (seconds)."""

    platform: str
    #: one inner-loop multiply-add of the naive matmul
    matmul_op_s: float
    #: one complex DIF butterfly (add, sub, complex twiddle multiply)
    fft_butterfly_s: float
    #: host-side work per FFT sample point per set (input prep, final
    #: bit-reversal assembly, result copy) — the serial fraction
    fft_host_per_point_s: float
    #: JPEG compression of one 8x8 block (DCT + quantize + entropy-code)
    jpeg_compress_block_s: float
    #: JPEG decompression of one 8x8 block
    jpeg_decompress_block_s: float
    #: host file I/O per byte (reading the source image / writing output)
    file_io_per_byte_s: float

    def __post_init__(self) -> None:
        for f in ("matmul_op_s", "fft_butterfly_s", "fft_host_per_point_s",
                  "jpeg_compress_block_s", "jpeg_decompress_block_s",
                  "file_io_per_byte_s"):
            if getattr(self, f) <= 0:
                raise ValueError(f"{f} must be positive")

    # ------------------------------------------------------------ aggregates
    def matmul_time(self, rows: int, inner: int, cols: int) -> float:
        """Compute time for a rows x inner by inner x cols block product."""
        return rows * inner * cols * self.matmul_op_s

    def fft_compute_time(self, n_butterflies: int) -> float:
        return n_butterflies * self.fft_butterfly_s

    def jpeg_compress_time(self, n_blocks: int) -> float:
        return n_blocks * self.jpeg_compress_block_s

    def jpeg_decompress_time(self, n_blocks: int) -> float:
        return n_blocks * self.jpeg_decompress_block_s


#: SPARCstation ELC (SUN/Ethernet platform)
ELC_COSTS = AppCosts(
    platform="SUN-ELC",
    matmul_op_s=11.86e-6,
    fft_butterfly_s=215e-6,
    fft_host_per_point_s=400e-6,
    jpeg_compress_block_s=500e-6,
    jpeg_decompress_block_s=270e-6,
    file_io_per_byte_s=1.6e-6,
)

#: SPARCstation IPX (SUN/ATM + NYNET platform)
IPX_COSTS = AppCosts(
    platform="SUN-IPX",
    matmul_op_s=11.55e-6,
    fft_butterfly_s=198e-6,
    fft_host_per_point_s=365e-6,
    jpeg_compress_block_s=310e-6,
    jpeg_decompress_block_s=170e-6,
    file_io_per_byte_s=1.0e-6,
)


def costs_for_platform(name: str) -> AppCosts:
    """Look up costs by platform name ("SUN-ELC" / "SUN-IPX")."""
    for costs in (ELC_COSTS, IPX_COSTS):
        if costs.platform == name:
            return costs
    raise KeyError(f"no calibrated costs for platform {name!r}")
