"""Distributed matrix multiplication (paper §5.1, Table 1, Figs 13/14).

Host-node model: "The host process sends the whole B matrix to all the
node process and distributes the rows of A matrix equally among the
nodes.  Each of the node processes then calculates its portion of the C
matrix and sends the result to the host process."

Two variants, ported line for line from the paper's pseudo-code:

* :func:`run_matmul_p4` — Fig 13: single-threaded p4 processes.
* :func:`run_matmul_ncs` — Fig 14: two (or more) NCS threads per
  process; host thread *t* converses with thread *t* of every node, and
  "B matrix is sent to a particular node only once, since all the
  threads share the same address space".

Both variants really compute C with numpy (verified against ``A @ B``)
while charging the calibrated 1995 compute costs to the simulated CPUs.
"""

from __future__ import annotations


import numpy as np

from ..core import NcsRuntime
from ..core.mps import ServiceMode
from ..core.mts.sync import ThreadEvent
from ..p4 import P4Runtime
from .common import (
    AppResult, DATA, RESULT, build_platform_cluster, platform_costs,
    run_p4_programs,
)

__all__ = ["make_matrices", "run_matmul_p4", "run_matmul_ncs"]

#: the paper's benchmark multiplies doubles
ELEMENT_BYTES = 8

#: tag distinguishing A-row chunks from the broadcast B matrix
A_DATA = 3


def make_matrices(n: int, seed: int = 7):
    """Deterministic input matrices A, B (float64)."""
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((n, n)), rng.standard_normal((n, n)))


def _row_slices(n: int, parts: int) -> list[slice]:
    """Split n rows into ``parts`` equal slices (n must divide evenly,
    like the paper's 128 rows over 1/2/4/8 nodes)."""
    if n % parts:
        raise ValueError(f"{n} rows do not divide into {parts} parts")
    step = n // parts
    return [slice(i * step, (i + 1) * step) for i in range(parts)]


# ---------------------------------------------------------------------------
# p4 variant (Fig 13)
# ---------------------------------------------------------------------------

def run_matmul_p4(platform: str, n_nodes: int, n: int = 128,
                  seed: int = 7, trace: bool = False,
                  cluster=None, p4_params=None) -> AppResult:
    """The Fig 13 program: host + ``n_nodes`` single-threaded processes."""
    A, B = make_matrices(n, seed)
    costs = platform_costs(platform)
    cluster = cluster or build_platform_cluster(platform, n_nodes + 1,
                                                trace=trace)
    rt = P4Runtime(cluster, p4_params)
    slices = _row_slices(n, n_nodes)
    C = np.zeros((n, n))
    b_bytes = n * n * ELEMENT_BYTES

    def host_process(p4):
        # Distribute matrix
        for i in range(1, n_nodes + 1):
            sl = slices[i - 1]
            yield from p4.send(DATA, i, B, b_bytes)
            yield from p4.send(DATA, i, (sl, A[sl]),
                               (sl.stop - sl.start) * n * ELEMENT_BYTES)
        # Wait for results
        for _ in range(n_nodes):
            msg = yield from p4.recv(type_=RESULT)
            sl, block = msg.data
            C[sl] = block

    def node_process(p4):
        bmsg = yield from p4.recv(type_=DATA, from_=0)
        amsg = yield from p4.recv(type_=DATA, from_=0)
        sl, a_block = amsg.data
        rows = a_block.shape[0]
        yield from p4.compute(costs.matmul_time(rows, n, n), "matmul")
        block = a_block @ bmsg.data
        yield from p4.send(RESULT, 0, (sl, block),
                           rows * n * ELEMENT_BYTES)

    procs = [rt.spawn(0, host_process)]
    for i in range(1, n_nodes + 1):
        procs.append(rt.spawn(i, node_process))
    makespan = run_p4_programs(cluster, procs)
    correct = bool(np.allclose(C, A @ B))
    return AppResult("matmul", "p4", platform, n_nodes, makespan, correct,
                     details={"n": n}, cluster=cluster)


# ---------------------------------------------------------------------------
# NCS variant (Fig 14)
# ---------------------------------------------------------------------------

def run_matmul_ncs(platform: str, n_nodes: int, n: int = 128,
                   threads_per_node: int = 2, seed: int = 7,
                   trace: bool = False, mode: ServiceMode = ServiceMode.P4,
                   cluster=None, p4_params=None,
                   flow=None, error=None, error_kwargs=None,
                   runtime_hook=None) -> AppResult:
    """The Fig 14 program: ``threads_per_node`` compute threads in the
    host process and in every node process; thread *t* of the host
    converses with thread *t* of each node.

    ``flow``/``error``/``error_kwargs`` are forwarded to the runtime
    (the chaos suite runs with ``error='ack'`` so the EC thread carries
    the computation across injected faults).  ``runtime_hook(rt)``, if
    given, is called after thread creation and before the run — the
    seam for arming a :class:`repro.faults.FaultInjector` that needs
    the runtime.
    """
    A, B = make_matrices(n, seed)
    costs = platform_costs(platform)
    cluster = cluster or build_platform_cluster(platform, n_nodes + 1,
                                                trace=trace)
    rt = NcsRuntime(cluster, mode=mode, p4_params=p4_params,
                    flow=flow, error=error, error_kwargs=error_kwargs)
    T = threads_per_node
    slices = _row_slices(n, n_nodes * T)

    def part(node_i: int, t: int) -> slice:
        """A-rows handled by thread t of node node_i (1-based node)."""
        return slices[(node_i - 1) * T + t]

    C = np.zeros((n, n))
    b_bytes = n * n * ELEMENT_BYTES
    # per-node shared address space: B arrives once, threads share it
    shared: dict[int, dict] = {i: {} for i in range(1, n_nodes + 1)}
    b_ready: dict[int, ThreadEvent] = {
        i: ThreadEvent(cluster.sim) for i in range(1, n_nodes + 1)}

    # tid maps filled during creation, read by bodies at run time
    host_tids: dict[int, int] = {}
    node_tids: dict[tuple[int, int], int] = {}

    def host_thread(ctx, t: int):
        # Distribute: B once per node (thread 0 only), then A parts
        for i in range(1, n_nodes + 1):
            if t == 0:
                yield ctx.send(node_tids[(i, 0)], i, B, b_bytes, tag=DATA)
            sl = part(i, t)
            yield ctx.send(node_tids[(i, t)], i, (sl, A[sl]),
                           (sl.stop - sl.start) * n * ELEMENT_BYTES,
                           tag=A_DATA)
        # Collect this thread's C parts
        for _ in range(n_nodes):
            msg = yield ctx.recv(from_thread=-1, from_process=-1, tag=RESULT)
            sl, block = msg.data
            C[sl] = block

    def node_thread(ctx, i: int, t: int):
        if t == 0:
            bmsg = yield ctx.recv(from_process=0, tag=DATA)
            shared[i]["B"] = bmsg.data
            b_ready[i].signal()
        amsg = yield ctx.recv(from_process=0, tag=A_DATA)
        yield b_ready[i].wait()
        sl, a_block = amsg.data
        rows = a_block.shape[0]
        yield ctx.compute(costs.matmul_time(rows, n, n), "matmul")
        block = a_block @ shared[i]["B"]
        yield ctx.send(host_tids[t], 0, (sl, block),
                       rows * n * ELEMENT_BYTES, tag=RESULT)

    for t in range(T):
        host_tids[t] = rt.t_create(0, host_thread, (t,), name=f"host-t{t}")
    for i in range(1, n_nodes + 1):
        for t in range(T):
            node_tids[(i, t)] = rt.t_create(
                i, node_thread, (i, t), name=f"n{i}-t{t}")

    if runtime_hook is not None:
        runtime_hook(rt)
    makespan = rt.run(max_events=50_000_000)
    correct = bool(np.allclose(C, A @ B))
    return AppResult("matmul", "ncs", platform, n_nodes, makespan, correct,
                     details={"n": n, "threads": T, "mode": mode.value},
                     cluster=cluster)
