"""Minimal UDP model: unreliable, unordered datagram delivery.

Used by the QoS examples (a VOD stream does not want TCP retransmission
stalls) and as a contrast case in the NSM/HSM benchmarks.
"""

from __future__ import annotations

from typing import Any

from ..sim import Activity, Event, Store
from .ip import IpLayer

__all__ = ["UdpStack", "UDP_HEADER_BYTES"]

UDP_HEADER_BYTES = 8


class UdpStack:
    """Per-host UDP with port-keyed receive queues."""

    def __init__(self, host, ip: IpLayer,
                 tx_proc_s: float = 60e-6, rx_proc_s: float = 60e-6):
        self.host = host
        self.sim = host.sim
        self.ip = ip
        self.tx_proc_s = tx_proc_s
        self.rx_proc_s = rx_proc_s
        self._ports: dict[int, Store] = {}
        self._rx_q: Store = Store(self.sim, name=f"udprx:{host.name}")
        ip.register_protocol("udp", lambda pkt: self._rx_q.try_put(pkt))
        self.sim.process(self._rx_loop(), name=f"udp-rx:{host.name}")
        self.datagrams_sent = 0
        self.datagrams_delivered = 0

    def port(self, number: int) -> Store:
        q = self._ports.get(number)
        if q is None:
            q = self._ports[number] = Store(
                self.sim, name=f"udpport:{self.host.name}:{number}")
        return q

    def send(self, dst_host: str, port: int, payload: Any, nbytes: int):
        """Generator: charge send-side cost and emit one datagram
        (fragmented by IP if it exceeds the MTU)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        cost = self.tx_proc_s + self.host.cpu.touch_time(nbytes)
        yield from self.host.cpu_busy(cost, Activity.COMMUNICATE, "udp:tx")
        self.datagrams_sent += 1
        self.ip.send(dst_host, "udp", (port, payload, nbytes),
                     UDP_HEADER_BYTES + nbytes)

    def recv(self, port: int) -> Event:
        """Event firing with ``(payload, nbytes, src_host)``."""
        return self.port(port).get()

    def _rx_loop(self):
        while True:
            pkt = yield self._rx_q.get()
            yield from self.host.cpu_busy(
                self.host.os.interrupt_time + self.rx_proc_s,
                Activity.OVERHEAD, "udp:rx")
            if pkt.payload is None:
                continue  # fragment loss upstream
            port, payload, nbytes = pkt.payload
            self.datagrams_delivered += 1
            self.port(port).try_put((payload, nbytes, pkt.src))
