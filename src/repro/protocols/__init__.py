"""Traditional protocol stack (sockets / TCP / UDP / IP) — the NSM path."""

from .ip import (
    ATM_IP_MTU,
    AtmIpAdapter,
    EthernetIpAdapter,
    IP_HEADER_BYTES,
    IpLayer,
    IpPacket,
    LLC_SNAP_BYTES,
)
from .sockets import (
    NIC_COPY_ACCESSES,
    SOCKET_RECV_COPY_ACCESSES,
    SOCKET_SEND_COPY_ACCESSES,
    SocketLayer,
)
from .tcp import TCP_HEADER_BYTES, TcpConnection, TcpParams, TcpSegment, TcpStack
from .udp import UDP_HEADER_BYTES, UdpStack

__all__ = [
    "ATM_IP_MTU", "AtmIpAdapter", "EthernetIpAdapter", "IP_HEADER_BYTES",
    "IpLayer", "IpPacket", "LLC_SNAP_BYTES",
    "SocketLayer", "SOCKET_SEND_COPY_ACCESSES", "SOCKET_RECV_COPY_ACCESSES",
    "NIC_COPY_ACCESSES",
    "TCP_HEADER_BYTES", "TcpConnection", "TcpParams", "TcpSegment", "TcpStack",
    "UDP_HEADER_BYTES", "UdpStack",
]
