"""IP layer over Ethernet or ATM (classical IP over ATM, RFC 1577 style).

The paper's p4 baseline and NCS's Normal Speed Mode both run TCP/IP; on
the NYNET testbed that means IP datagrams carried in AAL5 PDUs with a
9180-byte MTU, and on the SUN/Ethernet platform the familiar 1500-byte
MTU.  ``IpLayer`` does addressing, fragmentation and reassembly;
link-specific adaptation lives in :class:`EthernetIpAdapter` and
:class:`AtmIpAdapter`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..sim import Simulator

__all__ = [
    "IP_HEADER_BYTES", "LLC_SNAP_BYTES", "ATM_IP_MTU",
    "IpPacket", "IpLayer", "EthernetIpAdapter", "AtmIpAdapter",
]

IP_HEADER_BYTES = 20
#: LLC/SNAP encapsulation of IP in AAL5 (RFC 1483)
LLC_SNAP_BYTES = 8
#: default MTU for classical IP over ATM (RFC 1577)
ATM_IP_MTU = 9180


@dataclass
class IpPacket:
    """One IP datagram (possibly a fragment)."""

    src: str
    dst: str
    proto: str                  # "tcp" | "udp"
    payload: Any                # upper-layer segment (opaque)
    payload_bytes: int
    ident: int
    frag_offset: int = 0
    more_frags: bool = False

    @property
    def total_bytes(self) -> int:
        return IP_HEADER_BYTES + self.payload_bytes


class LinkAdapter:
    """Interface the IP layer drives; one per (host, medium)."""

    mtu: int = 1500

    def send(self, dst_host: str, packet: IpPacket) -> None:
        raise NotImplementedError


class IpLayer:
    """Per-host IP: fragmentation, reassembly, protocol demux."""

    def __init__(self, sim: Simulator, host_name: str, adapter: LinkAdapter):
        self.sim = sim
        self.host_name = host_name
        self.adapter = adapter
        self._ident = 0
        #: (src, ident) -> {offset: fragment}
        self._reasm: dict[tuple[str, int], dict[int, IpPacket]] = {}
        #: proto -> handler(packet)
        self._handlers: dict[str, Callable[[IpPacket], None]] = {}
        #: counters
        self.packets_sent = 0
        self.packets_received = 0
        self.fragments_sent = 0
        # telemetry handles (no-ops when the registry is disabled)
        _m = sim.metrics
        self._m_sent = _m.counter(
            "ip.packets_sent", help="datagrams emitted", host=host_name)
        self._m_received = _m.counter(
            "ip.packets_received", help="datagrams delivered upward",
            host=host_name)
        self._m_fragments = _m.counter(
            "ip.fragments_sent", help="fragments emitted", host=host_name)

    def register_protocol(self, proto: str,
                          handler: Callable[[IpPacket], None]) -> None:
        if proto in self._handlers:
            raise ValueError(f"protocol {proto!r} already registered")
        self._handlers[proto] = handler

    @property
    def mss(self) -> int:
        """Maximum transport payload that avoids IP fragmentation."""
        return self.adapter.mtu - IP_HEADER_BYTES

    # ----------------------------------------------------------------- send
    def send(self, dst_host: str, proto: str, payload: Any,
             payload_bytes: int) -> None:
        """Emit a datagram, fragmenting if it exceeds the link MTU.

        Non-blocking: the link adapter queues onto NIC hardware.
        """
        self._ident += 1
        ident = self._ident
        max_payload = self.adapter.mtu - IP_HEADER_BYTES
        if payload_bytes <= max_payload:
            self.packets_sent += 1
            self._m_sent.inc()
            self.adapter.send(dst_host, IpPacket(
                self.host_name, dst_host, proto, payload, payload_bytes, ident))
            return
        # fragment: payload object rides only on the last fragment
        offset = 0
        # fragment payloads must be multiples of 8 except the last
        step = max_payload - (max_payload % 8)
        while offset < payload_bytes:
            take = min(step, payload_bytes - offset)
            last = offset + take >= payload_bytes
            self.adapter.send(dst_host, IpPacket(
                self.host_name, dst_host, proto,
                payload if last else None, take, ident,
                frag_offset=offset, more_frags=not last))
            self.fragments_sent += 1
            self._m_fragments.inc()
            offset += take
        self.packets_sent += 1
        self._m_sent.inc()

    # -------------------------------------------------------------- receive
    def receive(self, packet: IpPacket) -> None:
        """Called by the link adapter on datagram/fragment arrival."""
        if packet.dst != self.host_name:
            return  # not for us (promiscuous frame on shared medium)
        if packet.frag_offset == 0 and not packet.more_frags:
            self._deliver(packet)
            return
        key = (packet.src, packet.ident)
        frags = self._reasm.setdefault(key, {})
        frags[packet.frag_offset] = packet
        assembled = self._try_reassemble(frags)
        if assembled is not None:
            del self._reasm[key]
            self._deliver(assembled)

    def _try_reassemble(self, frags: dict[int, IpPacket]) -> Optional[IpPacket]:
        offset = 0
        total = 0
        payload = None
        chain = []
        while True:
            frag = frags.get(offset)
            if frag is None:
                return None
            chain.append(frag)
            total += frag.payload_bytes
            if frag.payload is not None:
                payload = frag.payload
            if not frag.more_frags:
                break
            offset += frag.payload_bytes
        first = chain[0]
        return IpPacket(first.src, first.dst, first.proto, payload,
                        total, first.ident)

    def _deliver(self, packet: IpPacket) -> None:
        self.packets_received += 1
        self._m_received.inc()
        handler = self._handlers.get(packet.proto)
        if handler is None:
            return  # no listener: drop, like a closed port
        handler(packet)


class EthernetIpAdapter(LinkAdapter):
    """IP over the shared Ethernet segment."""

    def __init__(self, nic, mtu: int = 1500):
        self.nic = nic
        self.mtu = mtu
        nic.set_receive_handler(self._on_frame)
        self._ip: Optional[IpLayer] = None

    def bind(self, ip: IpLayer) -> None:
        self._ip = ip

    def send(self, dst_host: str, packet: IpPacket) -> None:
        self.nic.enqueue(dst_host, packet, packet.total_bytes)

    def _on_frame(self, frame) -> None:
        if self._ip is not None:
            self._ip.receive(frame.payload)


class AtmIpAdapter(LinkAdapter):
    """Classical IP over ATM: one AAL5 PDU per datagram on a per-peer VC.

    VCs to every peer are provisioned by the topology builder (PVC mesh);
    ``register_vc`` installs them.
    """

    def __init__(self, atm_api, mtu: int = ATM_IP_MTU):
        self.atm_api = atm_api
        self.mtu = mtu
        self._vcs: dict[str, Any] = {}
        self._ip: Optional[IpLayer] = None
        self.sim = atm_api.sim

    def bind(self, ip: IpLayer) -> None:
        self._ip = ip

    def register_vc(self, dst_host: str, vc) -> None:
        """Install the outgoing VC used for datagrams to ``dst_host``."""
        if dst_host in self._vcs:
            raise ValueError(f"VC to {dst_host} already registered")
        self._vcs[dst_host] = vc

    def add_rx_vc(self, vc) -> None:
        """Listen for incoming datagrams on ``vc`` (a peer's VC that
        terminates at this host)."""
        self.sim.process(self._rx_loop(vc), name=f"ipoa-rx:{vc.vc_id}")

    def send(self, dst_host: str, packet: IpPacket) -> None:
        vc = self._vcs.get(dst_host)
        if vc is None:
            raise KeyError(f"no VC from {packet.src} to {dst_host}")
        adapter = self.atm_api.adapter
        msg_id = adapter.alloc_msg_id()
        # LLC/SNAP + IP header + payload in one AAL5 PDU; hardware path,
        # no host CPU charged here (TCP charges its own processing).
        self.sim.process(
            self._tx(vc, packet, msg_id), name=f"ipoa-tx:{dst_host}")

    def _tx(self, vc, packet: IpPacket, msg_id: int):
        nbytes = packet.total_bytes + LLC_SNAP_BYTES
        yield from self.atm_api.adapter.dma_transfer(nbytes)
        self.atm_api.adapter.send_pdu(vc, nbytes, msg_id=msg_id,
                                      is_final=True, payload=packet)

    def _rx_loop(self, vc):
        while True:
            msg = yield self.atm_api.recv(vc)
            if self._ip is not None and msg.payload is not None:
                self._ip.receive(msg.payload)
