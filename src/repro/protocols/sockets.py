"""The socket layer — owner of the Fig 3(a) datapath accounting.

The paper counts five memory-bus accesses per word on the traditional
send path: the application's own write into its buffer (1), the socket
layer's copy into a kernel buffer (2: read + write), TCP reading the data
for checksum/processing (1), and the copy out to the network interface
(1).  The application write belongs to application compute; the
checksum read is charged inside :mod:`repro.protocols.tcp`; this module
charges the remaining **socket copy (2)** and **kernel→NIC copy (1)** on
send, and the symmetric NIC→kernel (1) + kernel→user copy (2) on
receive, plus the syscall each side pays.

Together those terms reproduce the 5-vs-3 access comparison that
``benchmarks/bench_fig3_datapath.py`` regenerates.
"""

from __future__ import annotations

from typing import Any

from ..sim import Activity
from .tcp import TcpConnection, TcpStack

__all__ = ["SocketLayer", "SOCKET_SEND_COPY_ACCESSES",
           "SOCKET_RECV_COPY_ACCESSES", "NIC_COPY_ACCESSES"]

#: user buffer -> kernel socket buffer: read + write
SOCKET_SEND_COPY_ACCESSES = 2
#: kernel socket buffer -> user buffer: read + write
SOCKET_RECV_COPY_ACCESSES = 2
#: kernel buffer <-> network interface (programmed I/O on the SS-era SBus)
NIC_COPY_ACCESSES = 1


class SocketLayer:
    """Blocking send/recv over a :class:`TcpStack` with 1995 socket costs."""

    def __init__(self, host, tcp: TcpStack):
        self.host = host
        self.sim = host.sim
        self.tcp = tcp

    def connect(self, remote: str, cid: int = 0):
        """Generator: establish (or reuse) a connection to ``remote``."""
        conn = self.tcp.connection(remote, cid)
        if not conn.established:
            yield from conn.connect()
        return conn

    # ----------------------------------------------------------------- send
    def send(self, conn: TcpConnection, payload: Any, nbytes: int):
        """Generator: blocking socket write of one framed message."""
        host = self.host
        yield from host.cpu_busy(host.os.syscall_time, Activity.OVERHEAD,
                                 "sock:syscall")
        copy = host.cpu.copy_time(nbytes, SOCKET_SEND_COPY_ACCESSES) \
            + host.cpu.copy_time(nbytes, NIC_COPY_ACCESSES)
        yield from host.cpu_busy(copy, Activity.COMMUNICATE, "sock:copy")
        yield from conn.send_message(payload, nbytes)

    # -------------------------------------------------------------- receive
    def recv(self, conn: TcpConnection):
        """Generator: blocking socket read of the next framed message.

        Returns ``(payload, nbytes)``.  The read syscall and the
        kernel→user copy are charged *after* the message is available,
        in the caller's context — a thread blocked here keeps the CPU
        free for its siblings, a single-threaded process does not.
        """
        payload, nbytes = yield conn.recv_message()
        host = self.host
        yield from host.cpu_busy(host.os.syscall_time, Activity.OVERHEAD,
                                 "sock:syscall")
        copy = host.cpu.copy_time(nbytes, NIC_COPY_ACCESSES) \
            + host.cpu.copy_time(nbytes, SOCKET_RECV_COPY_ACCESSES)
        yield from host.cpu_busy(copy, Activity.COMMUNICATE, "sock:copy")
        return payload, nbytes
