"""Sliding-window TCP model.

This is the transport under p4 and under NCS's Normal Speed Mode — the
protocol whose per-segment processing, checksums, copies and ACK traffic
constitute the "inefficient communication protocols" the paper's HSM
avoids.  The model is deliberately mid-fidelity:

* byte sequence numbers, cumulative ACKs, fixed receive window
  (the SunOS-era default socket buffer), in-order delivery with
  out-of-order buffering;
* retransmission on timeout with exponential backoff (loss reaches us
  from the ATM path's AAL5 CRC failures or switch buffer overflows);
* a three-way handshake for timed connection setup;
* per-segment send/receive CPU costs and a checksum pass that touches
  every payload word — charged to the host CPU so protocol processing
  genuinely competes with application compute;
* message framing on top of the byte stream (length-aware, like p4's
  envelopes), because every consumer in this codebase is a
  message-passing library.

No congestion control: the 1995 experiments ran on a single LAN/WAN path
and the paper never mentions it; the fixed window already provides the
WAN bandwidth-delay-product behaviour the latency/bandwidth discussion
(§3, citing Kleinrock) cares about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..sim import Activity, Event, Store
from .ip import IpLayer

__all__ = ["TcpParams", "TcpSegment", "TcpConnection", "TcpStack",
           "TCP_HEADER_BYTES"]

TCP_HEADER_BYTES = 20


@dataclass(frozen=True)
class TcpParams:
    """Tunable protocol constants (calibrated in repro.apps.costs)."""

    window_bytes: int = 24576          # SunOS-era default socket buffer
    rto_initial_s: float = 0.5
    rto_max_s: float = 8.0
    tx_proc_per_segment_s: float = 120e-6
    rx_proc_per_segment_s: float = 120e-6
    ack_proc_s: float = 40e-6
    checksum: bool = True              # touch every payload word
    #: BSD delayed-ACK timer: a lone segment is not acknowledged until
    #: this much time passes (0 disables).  Combined with a small window
    #: this produces the classic mid-90s stall: the sender exhausts the
    #: window and sits idle most of each timer period.  Single-threaded
    #: p4 wastes that time; NCS threads compute through it.
    delayed_ack_s: float = 0.0
    #: acknowledge immediately after this many unacked data segments
    ack_every: int = 2
    #: Nagle's algorithm: hold a sub-MSS segment while any data is
    #: unacknowledged.  Interacts with delayed ACKs exactly the way the
    #: mid-90s folklore says (ping-pong patterns stall a full delayed-ACK
    #: period).  Off by default; an ablation/teaching knob.
    nagle: bool = False

    def __post_init__(self) -> None:
        if self.window_bytes < 1:
            raise ValueError("window must be at least one byte")
        if self.rto_initial_s <= 0 or self.rto_max_s < self.rto_initial_s:
            raise ValueError("invalid RTO configuration")
        if self.delayed_ack_s < 0:
            raise ValueError("delayed_ack_s must be non-negative")
        if self.ack_every < 1:
            raise ValueError("ack_every must be >= 1")


@dataclass
class TcpSegment:
    """One TCP segment (data, pure ACK, or handshake)."""

    src: str
    dst: str
    cid: int                      # connection id (port-pair stand-in)
    seq: int = 0
    payload_bytes: int = 0
    ack_no: int = -1              # cumulative ack (-1: no ack info)
    syn: bool = False
    synack: bool = False
    # message framing
    msg_id: int = -1
    msg_total: int = 0
    payload: Any = None           # application object, on last segment only

    @property
    def wire_bytes(self) -> int:
        return TCP_HEADER_BYTES + self.payload_bytes

    @property
    def is_data(self) -> bool:
        return self.payload_bytes > 0


@dataclass
class _MsgAssembly:
    total: int
    got: int = 0
    payload: Any = None


class TcpConnection:
    """One duplex connection between two hosts."""

    def __init__(self, stack: "TcpStack", remote: str, cid: int):
        self.stack = stack
        self.sim = stack.sim
        self.local = stack.host.name
        self.remote = remote
        self.cid = cid
        self.params = stack.params
        self.established = False
        self._established_ev: Optional[Event] = None
        # ---- sender state
        self.snd_nxt = 0
        self.snd_una = 0
        self._inflight: dict[int, TcpSegment] = {}   # seq -> segment
        self._ack_waiters: list[Event] = []
        self._rto_running = False
        self._rto = self.params.rto_initial_s
        self._msg_seq = 0
        self._send_lock: list[Event] = []  # FIFO of waiting senders
        self._send_busy = False
        # ---- receiver state
        self.rcv_nxt = 0
        self._ooo: dict[int, TcpSegment] = {}
        self._assembly: dict[int, _MsgAssembly] = {}
        self._segs_unacked = 0
        self._delack_gen = 0
        self._delack_running = False
        self._rx_msgs: Store = Store(self.sim, name=f"tcpmsgs:{self.local}<-{remote}")
        # ---- stats
        self.segments_sent = 0
        self.acks_sent = 0
        self.retransmits = 0

    # ------------------------------------------------------------ handshake
    def connect(self):
        """Generator: active-open three-way handshake."""
        if self.established:
            return self
        self._established_ev = self.sim.event(name=f"estab:{self.local}>{self.remote}")
        self._emit(TcpSegment(self.local, self.remote, self.cid, syn=True))
        yield self._established_ev
        return self

    # ----------------------------------------------------------------- send
    @property
    def inflight_bytes(self) -> int:
        return self.snd_nxt - self.snd_una

    def send_message(self, payload: Any, nbytes: int):
        """Generator (runs in the *caller's* simulated context): segment a
        message onto the stream, blocking while the window is full.

        This is the behaviour of a blocking ``write()`` on a socket: the
        caller's process is captive until the last byte enters the send
        window — which is exactly why single-threaded p4 cannot overlap
        anything with a large send, and threaded NCS can (only the
        calling *thread* is captive).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if not self.established:
            raise RuntimeError(
                f"connection {self.local}->{self.remote} not established")
        # serialize concurrent senders so messages interleave at message
        # (not segment) granularity, like a mutex-protected socket write
        if self._send_busy:
            ev = self.sim.event()
            self._send_lock.append(ev)
            yield ev
        self._send_busy = True
        try:
            # unique per (connection, direction): the receiver's assembly
            # table only ever sees one sender on this connection object
            self._msg_seq += 1
            msg_id = self._msg_seq
            # a segment must fit in the window or the send can never
            # proceed (SunOS-era 4 KB socket buffers vs ATM's 9 KB MTU)
            mss = min(self.stack.ip.mss - TCP_HEADER_BYTES,
                      self.params.window_bytes)
            host = self.stack.host
            offset = 0
            while True:
                take = min(mss, nbytes - offset)
                last = offset + take >= nbytes
                while self.inflight_bytes + max(take, 1) > self.params.window_bytes:
                    ev = self.sim.event()
                    self._ack_waiters.append(ev)
                    yield ev
                # Nagle: a runt segment waits until the pipe is empty
                while (self.params.nagle and take < mss
                        and self.inflight_bytes > 0):
                    ev = self.sim.event()
                    self._ack_waiters.append(ev)
                    yield ev
                cost = self.params.tx_proc_per_segment_s
                if self.params.checksum:
                    cost += host.cpu.touch_time(take)
                yield from host.cpu_busy(cost, Activity.COMMUNICATE, "tcp:tx")
                seg = TcpSegment(
                    self.local, self.remote, self.cid,
                    seq=self.snd_nxt, payload_bytes=max(take, 1),
                    msg_id=msg_id, msg_total=nbytes,
                    payload=payload if last else None)
                self._inflight[seg.seq] = seg
                self.snd_nxt += seg.payload_bytes
                self._emit(seg)
                self._ensure_rto_timer()
                offset += take
                if last:
                    break
        finally:
            self._send_busy = False
            if self._send_lock:
                self._send_lock.pop(0).succeed(None)

    def _emit(self, seg: TcpSegment) -> None:
        self.segments_sent += 1
        self.stack._m_segments.inc()
        self.stack.ip.send(self.remote, "tcp", seg, seg.wire_bytes)

    # ------------------------------------------------------------- receive
    def recv_message(self) -> Event:
        """Event firing with ``(payload, nbytes)`` for the next complete
        message (socket-layer copy costs are charged by the caller)."""
        return self._rx_msgs.get()

    @property
    def rx_ready(self) -> int:
        """Number of complete messages waiting."""
        return len(self._rx_msgs)

    # ---------------------------------------------------------- segment rx
    def handle_segment(self, seg: TcpSegment) -> None:
        if seg.syn:
            self.established = True
            self._emit(TcpSegment(self.local, self.remote, self.cid,
                                  synack=True))
            return
        if seg.synack:
            self.established = True
            if self._established_ev is not None:
                self._established_ev.succeed(None)
                self._established_ev = None
            return
        if seg.ack_no >= 0:
            self._handle_ack(seg.ack_no)
            return
        # data segment
        duplicate = False
        if seg.seq + seg.payload_bytes <= self.rcv_nxt:
            duplicate = True  # already delivered: re-ack immediately
        elif seg.seq == self.rcv_nxt:
            self._accept(seg)
            while self.rcv_nxt in self._ooo:
                self._accept(self._ooo.pop(self.rcv_nxt))
        else:
            self._ooo[seg.seq] = seg
        self._segs_unacked += 1
        if (duplicate or self.params.delayed_ack_s <= 0
                or self._segs_unacked >= self.params.ack_every):
            self._ack_now()
        elif not self._delack_running:
            self._delack_running = True
            self.sim.process(self._delayed_ack(),
                             name=f"delack:{self.local}<-{self.remote}")

    def _ack_now(self) -> None:
        self._segs_unacked = 0
        self.acks_sent += 1
        self.stack._m_acks.inc()
        self._emit_ack()

    def _delayed_ack(self):
        yield self.sim.timeout(self.params.delayed_ack_s)
        self._delack_running = False
        if self._segs_unacked > 0:
            self._ack_now()

    def _accept(self, seg: TcpSegment) -> None:
        self.rcv_nxt = seg.seq + seg.payload_bytes
        asm = self._assembly.get(seg.msg_id)
        if asm is None:
            asm = self._assembly[seg.msg_id] = _MsgAssembly(total=seg.msg_total)
        # payload_bytes is max(take,1); zero-byte messages ride one
        # 1-byte segment whose msg_total is 0
        asm.got += seg.payload_bytes
        if seg.payload is not None:
            asm.payload = seg.payload
        if asm.got >= max(asm.total, 1):
            del self._assembly[seg.msg_id]
            self._rx_msgs.try_put((asm.payload, asm.total))

    def _emit_ack(self) -> None:
        self._emit(TcpSegment(self.local, self.remote, self.cid,
                              ack_no=self.rcv_nxt))

    # ------------------------------------------------------------ ack / rto
    def _handle_ack(self, ack_no: int) -> None:
        if ack_no <= self.snd_una:
            return
        for seq in [s for s in self._inflight if s < ack_no]:
            del self._inflight[seq]
        self.snd_una = ack_no
        self._rto = self.params.rto_initial_s
        waiters, self._ack_waiters = self._ack_waiters, []
        for ev in waiters:
            ev.succeed(None)

    def _ensure_rto_timer(self) -> None:
        if not self._rto_running:
            self._rto_running = True
            self.sim.process(self._rto_loop(),
                             name=f"rto:{self.local}>{self.remote}")

    def _rto_loop(self):
        while self._inflight:
            una_before = self.snd_una
            yield self.sim.timeout(self._rto)
            if not self._inflight:
                break
            if self.snd_una == una_before:
                # oldest unacked segment timed out: retransmit it
                seq = min(self._inflight)
                self.retransmits += 1
                self.stack._m_retransmits.inc()
                self._emit(self._inflight[seq])
                self._rto = min(self._rto * 2, self.params.rto_max_s)
        self._rto_running = False


class TcpStack:
    """Per-host TCP: demultiplexes segments to connections and charges
    receive-side protocol processing to the host CPU."""

    def __init__(self, host, ip: IpLayer, params: Optional[TcpParams] = None):
        self.host = host
        self.sim = host.sim
        self.ip = ip
        self.params = params or TcpParams()
        self._conns: dict[tuple[str, int], TcpConnection] = {}
        self._rx_q: Store = Store(self.sim, name=f"tcprx:{host.name}")
        # telemetry handles: connections publish through their stack so
        # the per-host aggregate is maintained, not recomputed
        _m = self.sim.metrics
        self._m_segments = _m.counter(
            "tcp.segments_sent", help="TCP segments emitted (data+ctl)",
            host=host.name)
        self._m_acks = _m.counter(
            "tcp.acks_sent", help="pure ACK segments emitted", host=host.name)
        self._m_retransmits = _m.counter(
            "tcp.retransmissions", help="RTO-driven retransmissions",
            host=host.name)
        ip.register_protocol("tcp", self._on_packet)
        self.sim.process(self._rx_loop(), name=f"tcp-rx:{host.name}")

    def connection(self, remote: str, cid: int = 0) -> TcpConnection:
        """The (lazily created) connection object for a peer."""
        key = (remote, cid)
        conn = self._conns.get(key)
        if conn is None:
            conn = self._conns[key] = TcpConnection(self, remote, cid)
        return conn

    def connections(self) -> list["TcpConnection"]:
        """The live connection objects (read-only view)."""
        return list(self._conns.values())

    def stats(self) -> dict[str, int]:
        """Aggregate TCP statistics over every connection on this host —
        the public surface :func:`repro.diagnostics.cluster_report` (and
        anything else) should use instead of walking private state."""
        segs = acks = rexmit = 0
        for conn in self._conns.values():
            segs += conn.segments_sent
            acks += conn.acks_sent
            rexmit += conn.retransmits
        return {"segments_sent": segs, "acks_sent": acks,
                "retransmissions": rexmit}

    def _on_packet(self, packet) -> None:
        self._rx_q.try_put(packet.payload)

    def _rx_loop(self):
        """Kernel protocol processing: interrupts + TCP input path steal
        CPU from whatever the host is computing."""
        os = self.host.os
        while True:
            seg: TcpSegment = yield self._rx_q.get()
            if seg.is_data:
                cost = os.interrupt_time + self.params.rx_proc_per_segment_s
                if self.params.checksum:
                    cost += self.host.cpu.touch_time(seg.payload_bytes)
            else:
                cost = os.interrupt_time + self.params.ack_proc_s
            yield from self.host.cpu_busy(cost, Activity.OVERHEAD, "tcp:rx")
            self.connection(seg.src, seg.cid).handle_segment(seg)
